//! Round executors: *which* sampled clients report back, and *when*.
//!
//! The paper's Algorithm 2 assumes the idealized synchronous setting —
//! every sampled client trains and its update arrives instantly. Real
//! federated deployments are dominated by device heterogeneity:
//! stragglers, dropouts, and deadline-bounded rounds. [`RoundExecutor`]
//! factors that concern out of the server loop:
//!
//! * [`IdealExecutor`] reproduces the paper's setting bit-for-bit (the
//!   default; histories are byte-identical to the pre-abstraction loop);
//! * [`DeadlineExecutor`] runs each round through the discrete-event
//!   heterogeneity engine (`feddrl_sim::{device, event}`): every sampled
//!   client gets a seeded [`DeviceProfile`](feddrl_sim::device::DeviceProfile),
//!   may drop out, and its upload-completion time — local compute plus
//!   model upload over its link — is scheduled on an [`EventQueue`]. Only
//!   updates arriving before the round deadline are aggregated; late ones
//!   are dropped or carried into the next round ([`LatePolicy`]);
//! * [`BufferedExecutor`] drops the round barrier entirely
//!   (FedAsync/FedBuff-style): the virtual clock and event queue persist
//!   across rounds, sampled clients start training immediately against
//!   the current model version, and the server aggregates as soon as
//!   `m = buffer_size` updates have arrived — a slow device's update lands
//!   in a *later* aggregation, `s` model versions stale, and its impact
//!   factor is scaled by a configurable [`StalenessDiscount`].
//!
//! Determinism: dropout draws derive from `(seed, round, client id)` and
//! device profiles from the fleet seed, so heterogeneity scenarios
//! reproduce exactly, independent of thread scheduling.

use std::collections::BTreeMap;

use crate::client::ClientUpdate;
use crate::history::HeteroRoundRecord;
use feddrl_nn::rng::Rng64;
use feddrl_sim::churn::ChurnProcess;
use feddrl_sim::comm::CommModel;
use feddrl_sim::device::{DiurnalConfig, FleetConfig, FleetView};
use feddrl_sim::event::{EventKind, EventQueue, VirtualClock};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How an update's impact factor is scaled by its staleness `s` — the
/// number of model versions aggregated between the version the update was
/// trained against and the version it is aggregated into.
///
/// Applied by the session loop to the strategy's *raw* factors before
/// simplex normalization, so a discount redistributes weight toward
/// fresher updates rather than shrinking the aggregate. Every function is
/// exactly `1` at `s = 0`, which keeps fresh-only rounds bit-identical to
/// an undiscounted run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum StalenessDiscount {
    /// No discount: stale updates aggregate at full weight.
    #[default]
    None,
    /// FedAsync's polynomial decay `(1 + s)^{-alpha}`: smooth, never zero,
    /// `alpha` controls how hard staleness is punished (`alpha = 0` is a
    /// no-op, `alpha = 1` is the `1/(1+s)` aging suggested in the survey
    /// literature).
    Polynomial {
        /// Decay exponent (finite, non-negative).
        alpha: f64,
    },
    /// Hinged decay: full weight up to `cutoff` versions of slack, then
    /// `1/(1 + s - cutoff)` beyond it — tolerate mild staleness, punish
    /// the long tail. Never zero, so a round of all-stale updates still
    /// normalizes onto the simplex.
    Hinge {
        /// Staleness up to which an update keeps full weight.
        cutoff: usize,
    },
}

impl StalenessDiscount {
    /// The multiplicative weight for an update `staleness` versions behind.
    /// Always in `(0, 1]`, and exactly `1.0` at zero staleness. The lower
    /// end is clamped to `f32::MIN_POSITIVE`: an aggressive polynomial
    /// exponent must never underflow to an exact zero, or an all-stale
    /// aggregation would zero every factor and fail simplex normalization
    /// mid-run on a configuration the builder accepted.
    pub fn factor(&self, staleness: usize) -> f32 {
        let raw = match *self {
            StalenessDiscount::None => return 1.0,
            StalenessDiscount::Polynomial { alpha } => (1.0 + staleness as f64).powf(-alpha) as f32,
            StalenessDiscount::Hinge { cutoff } => {
                if staleness <= cutoff {
                    1.0
                } else {
                    (1.0 / (1.0 + (staleness - cutoff) as f64)) as f32
                }
            }
        };
        raw.max(f32::MIN_POSITIVE)
    }

    /// Check the discount's parameters.
    ///
    /// # Errors
    /// [`FlError::InvalidDiscount`](crate::error::FlError::InvalidDiscount)
    /// on a non-finite or negative polynomial exponent.
    pub fn validate(&self) -> Result<(), crate::error::FlError> {
        if let StalenessDiscount::Polynomial { alpha } = *self {
            if !(alpha.is_finite() && alpha >= 0.0) {
                return Err(crate::error::FlError::InvalidDiscount {
                    reason: format!(
                        "polynomial exponent must be finite and non-negative, got {alpha}"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// What happens to an update that misses the round deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LatePolicy {
    /// Late updates are discarded (the client's round was wasted).
    #[default]
    Drop,
    /// Late updates are buffered and aggregated in a later round with
    /// spare capacity (stale but not wasted — the FedAsync-style
    /// compromise). At most `participants` updates are aggregated per
    /// round, so a stale update waits until dropouts/stragglers leave
    /// room; it is discarded if its client reports fresh first, or if the
    /// queue outgrows `participants` (oldest evicted — unbounded staleness
    /// would poison the aggregate).
    CarryOver,
}

/// Adaptive structured dropout: a device whose predicted full-model
/// completion time misses the round deadline trains a *masked sub-model*
/// (whole hidden units removed, compute scaled down proportionally)
/// instead of being dropped or carried stale. The executor picks the
/// **largest** keep ratio from a small grid that still fits the deadline;
/// if even the smallest misses, the client falls back to the configured
/// [`LatePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StructuredDropoutConfig {
    /// Smallest sub-model the server will ask a device to train, as a
    /// keep fraction in `(0, 1)`.
    pub min_ratio: f64,
    /// Number of keep-ratio levels on the grid
    /// `min_ratio + i · (1 − min_ratio) / levels`, `i ∈ [0, levels)` — all
    /// strictly below 1 (a full model is not a sub-model).
    pub levels: usize,
}

impl Default for StructuredDropoutConfig {
    /// Four levels down to a quarter-width model: 0.25, 0.4375, 0.625,
    /// 0.8125.
    fn default() -> Self {
        Self {
            min_ratio: 0.25,
            levels: 4,
        }
    }
}

impl StructuredDropoutConfig {
    /// Candidate keep ratios, largest first (the executor takes the first
    /// that fits the deadline — the biggest sub-model the device can
    /// finish in time).
    pub fn ratios_desc(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.levels)
            .rev()
            .map(move |i| self.min_ratio + i as f64 * (1.0 - self.min_ratio) / self.levels as f64)
    }

    /// The largest keep ratio on the grid whose predicted completion time
    /// (per the caller-supplied cost model) fits the deadline, or `None`
    /// when even the smallest sub-model misses it.
    ///
    /// Both the in-process [`DeadlineExecutor`] and the networked
    /// executor's wire-masking path route their dispatch decision through
    /// this one function, so a given `(deadline, cost model)` pair yields
    /// the same keep ratio on either side — a precondition for their
    /// byte-identical histories.
    pub fn largest_fitting(
        &self,
        deadline_s: f64,
        mut time_for_ratio: impl FnMut(f64) -> f64,
    ) -> Option<f64> {
        self.ratios_desc()
            .find(|&r| time_for_ratio(r) <= deadline_s)
    }

    /// Check the ratio grid's invariants.
    ///
    /// # Errors
    /// [`FlError::InvalidDynamics`](crate::error::FlError::InvalidDynamics)
    /// on a ratio outside `(0, 1)` or an empty grid.
    pub fn validate(&self) -> Result<(), crate::error::FlError> {
        use crate::error::FlError;
        if !(self.min_ratio.is_finite() && 0.0 < self.min_ratio && self.min_ratio < 1.0) {
            return Err(FlError::InvalidDynamics {
                reason: format!(
                    "structured-dropout min_ratio must be in (0, 1), got {}",
                    self.min_ratio
                ),
            });
        }
        if self.levels == 0 {
            return Err(FlError::InvalidDynamics {
                reason: "structured-dropout ratio grid needs at least one level".into(),
            });
        }
        Ok(())
    }
}

/// Deadline-bounded execution knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HeteroConfig {
    /// Device-fleet generation parameters (one profile per client).
    pub fleet: FleetConfig,
    /// Round deadline in simulated seconds; `None` waits for every
    /// non-dropped client (unbounded round).
    #[serde(default)]
    pub deadline_s: Option<f64>,
    /// Fate of updates that miss the deadline.
    #[serde(default)]
    pub late_policy: LatePolicy,
    /// Adaptive structured dropout for predicted deadline-missers; `None`
    /// (the default, omitted from JSON) sends every foregone straggler
    /// down the `late_policy` path — the historical behavior.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub structured_dropout: Option<StructuredDropoutConfig>,
    /// Discount aging carried-over updates by the rounds they waited
    /// (meaningful under [`LatePolicy::CarryOver`]; the default `None`
    /// reinjects them at full weight, the pre-discount behavior).
    #[serde(default)]
    pub staleness: StalenessDiscount,
    /// Train dispatched clients in parallel (rayon) instead of one serial
    /// `train` call. Bit-identical to the serial loop under a fixed seed
    /// *provided* the train callback maps each client independently — true
    /// for the session's per-client derived RNG streams. Off by default.
    #[serde(default)]
    pub parallel_dispatch: bool,
}

impl HeteroConfig {
    /// Check every invariant the deadline executor enforces — the single
    /// source of truth shared by [`DeadlineExecutor::new`] (which panics
    /// on violation) and
    /// [`FlConfig::validate`](crate::server::FlConfig::validate) (which
    /// surfaces it as a typed error before any compute is spent).
    ///
    /// # Errors
    /// [`FlError::InvalidDeadline`](crate::error::FlError::InvalidDeadline),
    /// [`FlError::InvalidFleet`](crate::error::FlError::InvalidFleet),
    /// [`FlError::InvalidReliability`](crate::error::FlError::InvalidReliability) or
    /// [`FlError::InvalidDynamics`](crate::error::FlError::InvalidDynamics).
    pub fn validate(&self) -> Result<(), crate::error::FlError> {
        use crate::error::FlError;
        if let Some(d) = self.deadline_s {
            if !(d.is_finite() && d > 0.0) {
                return Err(FlError::InvalidDeadline { deadline_s: d });
            }
        }
        if let Some(sd) = &self.structured_dropout {
            sd.validate()?;
        }
        self.staleness.validate()?;
        validate_fleet(&self.fleet)
    }
}

/// Shared fleet validation mapping the three halves of
/// [`FleetConfig::validate`] to their distinct typed errors.
fn validate_fleet(fleet: &FleetConfig) -> Result<(), crate::error::FlError> {
    use crate::error::FlError;
    fleet
        .validate_base()
        .map_err(|reason| FlError::InvalidFleet { reason })?;
    fleet
        .validate_reliability()
        .map_err(|reason| FlError::InvalidReliability { reason })?;
    fleet
        .validate_dynamics()
        .map_err(|reason| FlError::InvalidDynamics { reason })
}

/// Buffered asynchronous execution knobs (FedAsync/FedBuff-style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferedConfig {
    /// Device-fleet generation parameters (one profile per client).
    pub fleet: FleetConfig,
    /// Updates the server waits for before aggregating (`m`). Must be in
    /// `[1, participants]`: zero would never aggregate, and a buffer
    /// larger than the per-round dispatch width starves the first rounds.
    pub buffer_size: usize,
    /// Impact-factor discount applied per update by its staleness.
    #[serde(default)]
    pub staleness: StalenessDiscount,
    /// Server mixing rate `η ∈ (0, 1]`: the new global model is
    /// `(1 − η)·w + η·Σ αₖ wₖ` — the FedAsync/FedBuff server step that
    /// keeps a small buffer from fully overwriting the global with a few
    /// clients' (possibly stale, non-IID) models. `None` means `η = 1`,
    /// the paper's pure Eq. 4 replacement.
    #[serde(default)]
    pub server_mix: Option<f64>,
    /// Train dispatched clients in parallel (rayon) instead of one serial
    /// `train` call. Bit-identical to the serial loop under a fixed seed
    /// *provided* the train callback maps each client independently — true
    /// for the session's per-client derived RNG streams. Off by default.
    #[serde(default)]
    pub parallel_dispatch: bool,
}

impl Default for BufferedConfig {
    /// Homogeneous default fleet, buffer of 1 (pure FedAsync), no
    /// discount.
    fn default() -> Self {
        Self {
            fleet: FleetConfig::default(),
            buffer_size: 1,
            staleness: StalenessDiscount::None,
            server_mix: None,
            parallel_dispatch: false,
        }
    }
}

impl BufferedConfig {
    /// Check every invariant the buffered executor enforces — shared by
    /// [`BufferedExecutor::new`] (which panics on violation) and
    /// [`FlConfig::validate`](crate::server::FlConfig::validate) (which
    /// surfaces it as a typed error before any compute is spent).
    ///
    /// # Errors
    /// [`FlError::ZeroBuffer`](crate::error::FlError::ZeroBuffer),
    /// [`FlError::BufferExceedsParticipants`](crate::error::FlError::BufferExceedsParticipants),
    /// [`FlError::InvalidDiscount`](crate::error::FlError::InvalidDiscount),
    /// [`FlError::InvalidFleet`](crate::error::FlError::InvalidFleet) or
    /// [`FlError::InvalidReliability`](crate::error::FlError::InvalidReliability).
    pub fn validate(&self, participants: usize) -> Result<(), crate::error::FlError> {
        use crate::error::FlError;
        if self.buffer_size == 0 {
            return Err(FlError::ZeroBuffer);
        }
        if self.buffer_size > participants {
            return Err(FlError::BufferExceedsParticipants {
                buffer_size: self.buffer_size,
                participants,
            });
        }
        if let Some(eta) = self.server_mix {
            if !(eta.is_finite() && 0.0 < eta && eta <= 1.0) {
                return Err(FlError::InvalidServerMix { server_mix: eta });
            }
        }
        self.staleness.validate()?;
        validate_fleet(&self.fleet)
    }
}

/// Which execution model a federated run uses (a [`crate::server::FlConfig`]
/// knob; `Ideal` is the paper's synchronous setting and the default).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum ExecutorConfig {
    /// Every sampled client trains and reports instantly (Algorithm 2).
    #[default]
    Ideal,
    /// Deadline-bounded rounds over a heterogeneous device fleet.
    Deadline(HeteroConfig),
    /// Buffered asynchronous aggregation: no round barrier, the server
    /// aggregates whenever `buffer_size` updates have arrived, stale
    /// updates discounted by [`StalenessDiscount`].
    Buffered(BufferedConfig),
}

impl ExecutorConfig {
    /// Build the executor for a run of `n_clients` total clients exchanging
    /// a `param_count`-parameter model with `participants` clients per
    /// round. `seed` salts the per-round dropout draws.
    pub fn build(
        &self,
        n_clients: usize,
        param_count: usize,
        participants: usize,
        seed: u64,
    ) -> Box<dyn RoundExecutor> {
        match self {
            ExecutorConfig::Ideal => Box::new(IdealExecutor),
            ExecutorConfig::Deadline(cfg) => Box::new(DeadlineExecutor::new(
                cfg.clone(),
                n_clients,
                param_count,
                participants,
                seed,
            )),
            ExecutorConfig::Buffered(cfg) => Box::new(BufferedExecutor::new(
                cfg.clone(),
                n_clients,
                param_count,
                participants,
                seed,
            )),
        }
    }
}

/// Per-client reliability telemetry a heterogeneity-aware executor
/// accumulates over a run — the *observed* counterpart to the fleet's
/// configured [`DeviceProfile`](feddrl_sim::device::DeviceProfile) rates,
/// which selection policies are not allowed to read directly (a real
/// server never knows a device's true failure probability, only what it
/// has seen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientReliability {
    /// Times this client was sampled and its device failed the round
    /// before training.
    pub dropouts: usize,
    /// Times this client was sampled and actually dispatched to train.
    pub dispatches: usize,
    /// Updates from this client the server has aggregated.
    pub aggregated: usize,
    /// Total staleness (in model versions) over its aggregated updates.
    pub staleness_sum: usize,
}

impl ClientReliability {
    /// Observed dropout frequency: failures over times the server tried
    /// this client (0 while the client is unobserved).
    pub fn dropout_rate(&self) -> f64 {
        let tried = self.dropouts + self.dispatches;
        if tried == 0 {
            0.0
        } else {
            self.dropouts as f64 / tried as f64
        }
    }

    /// Mean staleness over this client's aggregated updates (0 while none
    /// arrived) — chronically high values mark the slow devices an
    /// async-aware policy should dispatch while they are idle.
    pub fn mean_staleness(&self) -> f64 {
        if self.aggregated == 0 {
            0.0
        } else {
            self.staleness_sum as f64 / self.aggregated as f64
        }
    }
}

/// Sparse per-client reliability telemetry: [`ClientReliability`] keyed by
/// the clients the executor has actually *observed* (dispatched or seen
/// drop), instead of a dense `Vec` over the whole fleet.
///
/// An unobserved client reads as [`ClientReliability::default`] — exactly
/// what a dense table initialized that way would hold — so lookups are
/// total and the switch from dense storage is invisible to readers. What
/// changes is the memory shape: a million-client fleet whose rounds touch
/// a hundred devices holds a hundred entries ([`ReliabilityTable::observed`]
/// is the resident-entry count the scale sweep reports), and iteration
/// visits only observed clients, in ascending id order (deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReliabilityTable {
    stats: BTreeMap<usize, ClientReliability>,
}

impl ReliabilityTable {
    /// An empty table (nothing observed yet). Allocation-free and
    /// independent of fleet size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Telemetry for `client_id` — the zero record if unobserved.
    pub fn get(&self, client_id: usize) -> ClientReliability {
        self.stats.get(&client_id).copied().unwrap_or_default()
    }

    /// Mutable telemetry for `client_id`, inserting the zero record on
    /// first observation.
    pub fn entry(&mut self, client_id: usize) -> &mut ClientReliability {
        self.stats.entry(client_id).or_default()
    }

    /// Replace `client_id`'s telemetry wholesale (test/bench synthesis).
    pub fn insert(&mut self, client_id: usize, stats: ClientReliability) {
        self.stats.insert(client_id, stats);
    }

    /// Number of clients observed so far — the resident-memory metric:
    /// proportional to clients actually dispatched, never to fleet size.
    pub fn observed(&self) -> usize {
        self.stats.len()
    }

    /// Whether no client has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Iterate observed `(client_id, telemetry)` pairs in ascending id
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &ClientReliability)> + '_ {
        self.stats.iter().map(|(&id, s)| (id, s))
    }

    /// Field-wise totals over every observed client — the aggregate the
    /// accounting laws (dispatch/dropout/aggregation closure) are stated
    /// against.
    pub fn totals(&self) -> ClientReliability {
        let mut t = ClientReliability::default();
        for s in self.stats.values() {
            t.dropouts += s.dropouts;
            t.dispatches += s.dispatches;
            t.aggregated += s.aggregated;
            t.staleness_sum += s.staleness_sum;
        }
        t
    }
}

impl FromIterator<(usize, ClientReliability)> for ReliabilityTable {
    fn from_iter<I: IntoIterator<Item = (usize, ClientReliability)>>(iter: I) -> Self {
        Self {
            stats: iter.into_iter().collect(),
        }
    }
}

/// One client's training order: who trains, and how much of the model.
///
/// Executors hand the session a slice of these instead of bare client
/// ids, so adaptive structured dropout can ask a pressured device for a
/// sub-model without a second callback channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dispatch {
    /// Client index in the federation.
    pub client_id: usize,
    /// Fraction of the model's hidden units this client trains, in
    /// `(0, 1]`. `1` is full-model training; anything below it asks the
    /// session to derive a per-`(round, client)`
    /// [`StructuredMask`](feddrl_nn::mask::StructuredMask) (see
    /// [`crate::client::MASK_SALT`]) and train the masked sub-model.
    pub keep_ratio: f64,
}

impl Dispatch {
    /// A full-model training order for `client_id`.
    pub fn full(client_id: usize) -> Self {
        Self {
            client_id,
            keep_ratio: 1.0,
        }
    }
}

/// The local-training callback executors dispatch through: maps each
/// [`Dispatch`] to its client's [`ClientUpdate`], in order. Must be
/// `Sync`: executors with `parallel_dispatch` enabled invoke it from
/// rayon workers, one dispatch per call.
pub type TrainFn<'a> = dyn Fn(&[Dispatch]) -> Vec<ClientUpdate> + Sync + 'a;

/// Run `train` over `dispatches` — serially in one call, or (when
/// `parallel` is set) as one rayon task per client, concatenated back in
/// input order.
///
/// The two paths are bit-identical whenever `train` maps each client
/// independently of the others in its slice — the contract the session's
/// train callback satisfies by deriving every client's RNG stream from
/// `(seed, round, client id)` alone. `tests/scale_props.rs` pins the
/// byte-identity of full run histories across both paths.
fn dispatch_train(
    train: &TrainFn<'_>,
    dispatches: &[Dispatch],
    parallel: bool,
) -> Vec<ClientUpdate> {
    if !parallel || dispatches.len() < 2 {
        return train(dispatches);
    }
    dispatches
        .par_iter()
        .map(|&d| train(&[d]))
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect()
}

/// What a round executor hands back to the server loop.
pub struct RoundOutcome {
    /// Updates to aggregate this round, in deterministic order: carried-in
    /// stale updates first (oldest information), then this round's
    /// arrivals in sampling order. May be empty (everyone dropped or
    /// missed the deadline) — the server then skips aggregation.
    pub updates: Vec<ClientUpdate>,
    /// Heterogeneity telemetry; `None` for the ideal executor.
    pub hetero: Option<HeteroRoundRecord>,
}

/// The round-execution abstraction the server loop runs against.
///
/// `train` runs local training for a *subset* of the sampled clients and
/// returns their updates in the given order; the executor decides which
/// clients actually train (dropouts are decided before training, saving
/// their wasted CPU) and which reports make it back in time.
pub trait RoundExecutor: Send {
    /// Execute round `round` for the sampled `selected` clients. The
    /// executor decides which of them actually train — and, under
    /// adaptive structured dropout, how much of the model each trains —
    /// and invokes `train` with the resulting [`Dispatch`] orders.
    fn execute(&mut self, round: usize, selected: &[usize], train: &TrainFn<'_>) -> RoundOutcome;

    /// Broadcast the current global model to wherever training happens.
    /// The session calls this once per round, right before
    /// [`RoundExecutor::execute`], with the flat parameters the selected
    /// clients must train from. Every in-process executor keeps the no-op
    /// default (its `train` callback clones the live model directly);
    /// distributed executors (`feddrl_net`) fan the weights out to their
    /// remote client workers here.
    fn publish_model(&mut self, round: usize, global: &[f32]) {
        let _ = (round, global);
    }

    /// Total client ids ever minted, when this executor models fleet
    /// churn: ids in `[0, universe)` are valid to select (some may have
    /// departed), and growth of this value between rounds is how the
    /// session learns of late joiners. `None` — the default — means the
    /// client set is fixed at the partition's size.
    fn universe(&self) -> Option<usize> {
        None
    }

    /// Clients that have left the federation (churn departures), in
    /// ascending id order. Their telemetry persists — the server only
    /// ever *observes* departure as dispatches that stop answering — but
    /// reliability-aware selection excludes them outright once told.
    /// Empty for executors without churn.
    fn departed_clients(&self) -> Vec<usize> {
        Vec::new()
    }

    /// The device fleet this executor simulates, if any — what
    /// heterogeneity-aware [`SelectionPolicy`](crate::selection::SelectionPolicy)s
    /// base their completion-time estimates on. Served as a lazy
    /// [`FleetView`] so policies over a million-device fleet derive only
    /// the candidate profiles they score. `None` for executors without a
    /// device model (the ideal one).
    fn fleet(&self) -> Option<&FleetView> {
        None
    }

    /// Per-client upload payload in bytes (0 when there is no
    /// communication model); combined with
    /// [`RoundExecutor::fleet`] it prices a client's predicted arrival.
    fn upload_bytes(&self) -> u64 {
        0
    }

    /// The round deadline in simulated seconds, if this executor bounds
    /// rounds — lets selection policies avoid clients that would be cut.
    fn deadline_s(&self) -> Option<f64> {
        None
    }

    /// How the session loop should discount a stale update's impact factor
    /// (the factor for an update `s` versions behind is multiplied by
    /// [`StalenessDiscount::factor`]`(s)` before simplex normalization).
    /// `None` — the default — leaves factors untouched, so executors that
    /// only ever report fresh updates keep the historical byte-identical
    /// path.
    fn staleness_discount(&self) -> StalenessDiscount {
        StalenessDiscount::None
    }

    /// Server mixing rate `η ∈ (0, 1]` the session applies at aggregation:
    /// `w ← (1 − η)·w + η·Σ αₖ wₖ`. The default `1.0` is the paper's pure
    /// Eq. 4 replacement and leaves the historical code path untouched.
    fn server_mix(&self) -> f64 {
        1.0
    }

    /// Clients whose dispatched update is still on its way to the server
    /// — training, uploading, or parked in an unconsumed server-side
    /// queue. Sampling them again either wastes the slot (the buffered
    /// executor skips busy devices at dispatch) or supersedes — discards
    /// — the queued stale update (the deadline executor's carry-over), so
    /// async-aware selection policies rank them last. Executors that end
    /// every round with nothing pending keep the empty default.
    fn in_flight_clients(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Per-client reliability telemetry observed so far, keyed by client
    /// id over *observed* clients only — dropout counts and staleness
    /// history a [`SelectionPolicy`](crate::selection::SelectionPolicy)
    /// can learn from. `None` for executors without a device model (the
    /// ideal one never drops anyone).
    fn reliability(&self) -> Option<&ReliabilityTable> {
        None
    }
}

/// The paper's idealized synchronous round: everyone trains, everyone
/// reports, no virtual time passes.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealExecutor;

impl RoundExecutor for IdealExecutor {
    fn execute(&mut self, _round: usize, selected: &[usize], train: &TrainFn<'_>) -> RoundOutcome {
        let dispatches: Vec<Dispatch> = selected.iter().map(|&c| Dispatch::full(c)).collect();
        RoundOutcome {
            updates: train(&dispatches),
            hetero: None,
        }
    }
}

/// Salt for the per-round dropout RNG stream (distinct from client
/// training `0xC11E` and selection streams).
const DROPOUT_SALT: u64 = 0xD20_0FF;

/// Deadline-bounded rounds over a seeded heterogeneous device fleet.
pub struct DeadlineExecutor {
    fleet: FleetView,
    cfg: HeteroConfig,
    upload_bytes: u64,
    participants: usize,
    seed: u64,
    /// Global-model versions produced so far: incremented only when a
    /// round actually aggregates something, so staleness counts *model
    /// versions* an update is behind, not calendar rounds (an empty round
    /// leaves the global — and therefore every queued update's freshness —
    /// untouched).
    version: usize,
    /// Late updates awaiting a later round, each paired with the model
    /// version it was trained against — the carry-in ages it by the
    /// difference (only under [`LatePolicy::CarryOver`]).
    carried: Vec<(ClientUpdate, usize)>,
    /// Observed per-client reliability telemetry (dropouts, dispatches,
    /// aggregated updates and their staleness), keyed by observed client.
    stats: ReliabilityTable,
    /// Virtual seconds elapsed since the start of the run — the sum of
    /// every finished round's `sim_time_s`. Rounds still replay on a
    /// round-local event queue, but churn and diurnal modulation live on
    /// this absolute timeline (0 forever when both are off, keeping the
    /// static path byte-identical).
    clock_s: f64,
    /// The fleet's arrival/departure process, when churn is configured.
    churn: Option<ChurnProcess>,
}

impl DeadlineExecutor {
    /// Build the executor: opens a lazy view over the device fleet
    /// (profiles derive on demand — nothing is materialized up front) and
    /// derives the per-client upload payload from the §3.5 communication
    /// model (FedDRL traffic — model weights plus the two scalar losses).
    ///
    /// # Panics
    /// Panics on a non-positive deadline or a degenerate fleet config.
    pub fn new(
        cfg: HeteroConfig,
        n_clients: usize,
        param_count: usize,
        participants: usize,
        seed: u64,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        assert!(participants > 0, "participants must be positive");
        let fleet = FleetView::new(n_clients, &cfg.fleet);
        let k = participants as u64;
        let traffic = CommModel::new(param_count.max(1) as u64, k).feddrl_round();
        let upload_bytes = (traffic.uplink_models + traffic.uplink_metadata) / k;
        let churn = cfg
            .fleet
            .churn
            .as_ref()
            .map(|c| ChurnProcess::new(n_clients, c, cfg.fleet.seed ^ seed));
        Self {
            fleet,
            cfg,
            upload_bytes,
            participants,
            seed,
            version: 0,
            carried: Vec::new(),
            stats: ReliabilityTable::new(),
            clock_s: 0.0,
            churn,
        }
    }

    /// Per-client upload payload in bytes (model weights + metadata).
    pub fn upload_bytes(&self) -> u64 {
        self.upload_bytes
    }

    /// The lazy device-fleet view.
    pub fn fleet(&self) -> &FleetView {
        &self.fleet
    }
}

impl RoundExecutor for DeadlineExecutor {
    fn fleet(&self) -> Option<&FleetView> {
        Some(&self.fleet)
    }

    fn upload_bytes(&self) -> u64 {
        self.upload_bytes
    }

    fn deadline_s(&self) -> Option<f64> {
        self.cfg.deadline_s
    }

    fn staleness_discount(&self) -> StalenessDiscount {
        self.cfg.staleness
    }

    fn reliability(&self) -> Option<&ReliabilityTable> {
        Some(&self.stats)
    }

    fn in_flight_clients(&self) -> Vec<usize> {
        // Under `LatePolicy::CarryOver` a straggler's late update waits in
        // the carried queue between rounds; re-dispatching its client
        // would supersede (discard) that queued work, so selection
        // policies should treat it as pending. Always empty under `Drop`.
        self.carried.iter().map(|(u, _)| u.client_id).collect()
    }

    fn universe(&self) -> Option<usize> {
        self.churn.as_ref().map(|c| c.universe())
    }

    fn departed_clients(&self) -> Vec<usize> {
        self.churn
            .as_ref()
            .map(|c| c.departed_ids())
            .unwrap_or_default()
    }

    fn execute(&mut self, round: usize, selected: &[usize], train: &TrainFn<'_>) -> RoundOutcome {
        let deadline = self.cfg.deadline_s.unwrap_or(f64::INFINITY);
        let round_start_s = self.clock_s;
        let diurnal: Option<DiurnalConfig> = self.cfg.fleet.diurnal;

        // --- Churn: bring the arrival/departure timeline up to the round
        // start. Ids minted by now are selectable next round; ids departed
        // by now waste their dispatch below.
        let (joins_before, leaves_before) = self
            .churn
            .as_ref()
            .map_or((0, 0), |c| (c.joins(), c.leaves()));
        if let Some(churn) = self.churn.as_mut() {
            churn.advance_to(round_start_s);
            self.fleet.grow(churn.universe());
        }

        // --- Dropouts, decided up front: a dropped client never trains
        // (its device failed the round), so its CPU is not simulated. A
        // dispatch to a departed client is likewise a wasted slot — the
        // server cannot know the device left until it fails to answer —
        // and reads as a dropout, which is exactly how the departure
        // surfaces in reliability telemetry. A client whose deterministic
        // completion time already exceeds the deadline is a foregone
        // straggler: structured dropout (when configured) shrinks its
        // model until it fits; otherwise, under `Drop` its update would be
        // trained only to be discarded, so skip the training too (under
        // `CarryOver` the update is still needed).
        let dropout_rng = Rng64::new(self.seed ^ DROPOUT_SALT).derive(round as u64);
        let mut alive: Vec<Dispatch> = Vec::with_capacity(selected.len());
        let mut dropouts = 0usize;
        let mut foregone_stragglers = 0usize;
        let mut masked = 0usize;
        for &cid in selected {
            if self.churn.as_ref().is_some_and(|c| !c.is_active(cid)) {
                dropouts += 1;
                self.stats.entry(cid).dropouts += 1;
                continue;
            }
            let profile = self.fleet.profile(cid);
            let p = profile.effective_dropout(diurnal.as_ref(), round_start_s);
            if p > 0.0 && dropout_rng.derive(cid as u64).chance(p) {
                dropouts += 1;
                self.stats.entry(cid).dropouts += 1;
                continue;
            }
            let full_completion =
                profile.completion_time_at(self.upload_bytes, 1.0, diurnal.as_ref(), round_start_s);
            if full_completion > deadline {
                if let Some(fit) = self.cfg.structured_dropout.as_ref().and_then(|sd| {
                    sd.largest_fitting(deadline, |r| {
                        profile.completion_time_at(
                            self.upload_bytes,
                            r,
                            diurnal.as_ref(),
                            round_start_s,
                        )
                    })
                }) {
                    masked += 1;
                    alive.push(Dispatch {
                        client_id: cid,
                        keep_ratio: fit,
                    });
                    self.stats.entry(cid).dispatches += 1;
                } else if self.cfg.late_policy == LatePolicy::Drop {
                    foregone_stragglers += 1;
                } else {
                    alive.push(Dispatch::full(cid));
                    self.stats.entry(cid).dispatches += 1;
                }
                continue;
            }
            alive.push(Dispatch::full(cid));
            self.stats.entry(cid).dispatches += 1;
        }

        let updates = dispatch_train(train, &alive, self.cfg.parallel_dispatch);

        // --- Discrete-event round: schedule every surviving upload, then
        // replay the timeline against the deadline. Queue sized to this
        // round's dispatch (plus the deadline) — independent of fleet size.
        let mut queue = EventQueue::with_capacity(updates.len() + 1);
        let mut max_completion_s = 0.0f64;
        for (d, u) in alive.iter().zip(&updates) {
            debug_assert_eq!(
                d.client_id, u.client_id,
                "train must preserve dispatch order"
            );
            let completion_s = self.fleet.profile(u.client_id).completion_time_at(
                self.upload_bytes,
                d.keep_ratio,
                diurnal.as_ref(),
                round_start_s,
            );
            max_completion_s = max_completion_s.max(completion_s);
            queue.schedule(
                completion_s,
                EventKind::UploadComplete {
                    client_id: u.client_id,
                    // The model version these uploads trained against —
                    // advanced per aggregation, not per round, matching
                    // the field's documented meaning.
                    version: self.version,
                },
            );
        }
        if deadline.is_finite() {
            // Scheduled *after* the uploads: the FIFO tie-break then counts
            // an arrival at exactly the deadline as in time.
            queue.schedule(deadline, EventKind::Deadline);
        }

        // --- Mid-round churn: look ahead over the whole round window so a
        // departure can cancel its client's in-flight upload (the device
        // leaves before the report lands — a straggler the server waits
        // out, never aggregated, never carried). The churn clock then sits
        // at the window's end; rounds that finish early simply re-request
        // that prefix next time (a no-op rewind).
        let horizon_s = if deadline.is_finite() {
            deadline
        } else {
            max_completion_s
        };
        let mut leave_at: BTreeMap<usize, f64> = BTreeMap::new();
        if let Some(churn) = self.churn.as_mut() {
            for ev in churn.advance_to(round_start_s + horizon_s) {
                if let EventKind::ClientLeave { client_id } = ev.kind {
                    leave_at.entry(client_id).or_insert(ev.time_s);
                }
            }
            self.fleet.grow(churn.universe());
        }

        let mut clock = VirtualClock::new();
        let mut arrived_ids = Vec::new();
        let mut last_arrival_s = 0.0f64;
        let mut deadline_fired = false;
        while let Some(event) = queue.pop() {
            clock.advance_to(event.time_s);
            match event.kind {
                EventKind::UploadComplete { client_id, .. } if !deadline_fired => {
                    // A departure strictly before the arrival instant
                    // cancels the upload; leaving at the exact arrival
                    // moment still delivers it.
                    let canceled = leave_at
                        .get(&client_id)
                        .is_some_and(|&t| t < round_start_s + event.time_s);
                    if !canceled {
                        arrived_ids.push(client_id);
                        last_arrival_s = clock.now_s();
                    }
                }
                EventKind::UploadComplete { .. } => {} // straggler: drained below
                EventKind::Deadline => deadline_fired = true,
                EventKind::ClientJoin { .. } | EventKind::ClientLeave { .. } => {
                    unreachable!("churn events are consumed by ChurnProcess, never queued here")
                }
            }
        }
        let stragglers = foregone_stragglers + (updates.len() - arrived_ids.len());

        // The server waits until the deadline whenever a sampled report is
        // missing (it cannot know the client dropped); otherwise the round
        // ends when the last expected upload lands. With an unbounded
        // deadline, dropouts are assumed to notify failure, so the round
        // still ends at the last arrival.
        let sim_time_s = if deadline.is_finite() && (stragglers > 0 || dropouts > 0) {
            deadline
        } else {
            last_arrival_s
        };

        // --- Split arrivals from stragglers, keeping sampling order (so an
        // unbounded no-dropout round reduces exactly to the ideal one).
        let mut arrived = Vec::with_capacity(arrived_ids.len());
        let mut late = Vec::new();
        for u in updates {
            if arrived_ids.contains(&u.client_id) {
                arrived.push(u);
            } else {
                late.push(u);
            }
        }

        // --- Carry-in: stale updates fill the round's spare capacity,
        // oldest first, each aged by the rounds it waited (`staleness`
        // drives the session's impact-factor discount). A fresh arrival
        // discards its client's stale copy; stale updates that find no
        // capacity stay queued for a later, shorter round.
        let mut aggregated = Vec::new();
        let mut carried_in = 0usize;
        let mut still_queued = Vec::new();
        for (mut stale, trained_version) in std::mem::take(&mut self.carried) {
            if arrived.iter().any(|u| u.client_id == stale.client_id) {
                continue; // superseded by this round's fresh report
            }
            if aggregated.len() + arrived.len() < self.participants {
                stale.staleness = self.version - trained_version;
                aggregated.push(stale);
                carried_in += 1;
            } else {
                still_queued.push((stale, trained_version));
            }
        }
        aggregated.extend(arrived);
        self.carried = still_queued; // always empty under LatePolicy::Drop
        if self.cfg.late_policy == LatePolicy::CarryOver {
            // A newer late report supersedes its client's queued copy. A
            // departed client's late upload never reached the server, so
            // there is nothing to queue (its telemetry simply goes stale).
            for u in late {
                if self
                    .churn
                    .as_ref()
                    .is_some_and(|c| !c.is_active(u.client_id))
                {
                    continue;
                }
                self.carried.retain(|(s, _)| s.client_id != u.client_id);
                self.carried.push((u, self.version));
            }
            // Bound staleness: keep only the K most recent queued updates —
            // an unboundedly stale update would poison the aggregate.
            if self.carried.len() > self.participants {
                let excess = self.carried.len() - self.participants;
                self.carried.drain(..excess);
            }
        }

        // Per-update ages, recorded only when something stale was
        // aggregated (all-fresh rounds keep the pre-staleness JSON shape).
        let staleness = if carried_in > 0 {
            aggregated.iter().map(|u| u.staleness).collect()
        } else {
            Vec::new()
        };
        for u in &aggregated {
            let s = self.stats.entry(u.client_id);
            s.aggregated += 1;
            s.staleness_sum += u.staleness;
        }
        if !aggregated.is_empty() {
            self.version += 1; // the session will produce a new global
        }
        self.clock_s = round_start_s + sim_time_s;
        let (joined, departed) = self.churn.as_ref().map_or((0, 0), |c| {
            (c.joins() - joins_before, c.leaves() - leaves_before)
        });
        let hetero = HeteroRoundRecord {
            sim_time_s,
            dropouts,
            stragglers,
            carried_in,
            busy: 0,
            buffered: 0,
            joined,
            departed,
            masked,
            staleness,
            aggregated_ids: aggregated.iter().map(|u| u.client_id).collect(),
        };
        RoundOutcome {
            updates: aggregated,
            hetero: Some(hetero),
        }
    }
}

/// Buffered asynchronous aggregation over a seeded heterogeneous fleet
/// (FedAsync/FedBuff-style): no round barrier, persistent virtual time.
///
/// Unlike the round-scoped executors, the [`VirtualClock`] and
/// [`EventQueue`] live across `execute` calls. Each call dispatches the
/// newly sampled clients (they train against the *current* model version,
/// i.e. the current round) and schedules their upload completions, then
/// pops arrivals — which may include uploads dispatched in earlier rounds
/// — until the buffer holds exactly `buffer_size` updates. Those updates
/// are aggregated, each carrying `staleness = current version − trained
/// version`, where the version counter advances only on actual
/// aggregations (an empty round leaves the global untouched and ages
/// nothing); if the buffer cannot fill, *nothing* is aggregated and the
/// partial buffer persists, so every aggregation combines exactly
/// `buffer_size` updates. A sampled client whose previous upload is still
/// in flight *or parked in the buffer* is skipped for the round (its
/// device is busy / its report is unconsumed) — no aggregation ever
/// double-counts one client's data.
pub struct BufferedExecutor {
    fleet: FleetView,
    cfg: BufferedConfig,
    upload_bytes: u64,
    seed: u64,
    /// Virtual time since the start of the *run* (not the round).
    clock: VirtualClock,
    /// Pending upload completions, across model versions.
    queue: EventQueue,
    /// Global-model versions produced so far (aggregations completed) —
    /// what dispatches are stamped with and staleness is measured
    /// against.
    version: usize,
    /// Dispatched updates whose uploads have not completed yet, each with
    /// the model version it trains against.
    in_flight: Vec<(ClientUpdate, usize)>,
    /// Arrived updates awaiting the buffer to fill, in arrival order,
    /// each with the model version it was trained against. Never holds
    /// `buffer_size` or more entries between rounds.
    buffer: Vec<(ClientUpdate, usize)>,
    /// Observed per-client reliability telemetry (dropouts, dispatches,
    /// aggregated updates and their staleness), keyed by observed client.
    stats: ReliabilityTable,
    /// The fleet's arrival/departure process, when churn is configured —
    /// advanced along the executor's own persistent clock.
    churn: Option<ChurnProcess>,
}

impl BufferedExecutor {
    /// Build the executor: opens a lazy view over the device fleet
    /// (profiles derive on demand — nothing is materialized up front) and
    /// derives the per-client upload payload from the §3.5 communication
    /// model, like [`DeadlineExecutor::new`].
    ///
    /// # Panics
    /// Panics on a config [`BufferedConfig::validate`] rejects (zero or
    /// over-wide buffer, invalid discount, degenerate fleet).
    pub fn new(
        cfg: BufferedConfig,
        n_clients: usize,
        param_count: usize,
        participants: usize,
        seed: u64,
    ) -> Self {
        if let Err(e) = cfg.validate(participants) {
            panic!("{e}");
        }
        let fleet = FleetView::new(n_clients, &cfg.fleet);
        let k = participants as u64;
        let traffic = CommModel::new(param_count.max(1) as u64, k).feddrl_round();
        let upload_bytes = (traffic.uplink_models + traffic.uplink_metadata) / k;
        let churn = cfg
            .fleet
            .churn
            .as_ref()
            .map(|c| ChurnProcess::new(n_clients, c, cfg.fleet.seed ^ seed));
        Self {
            fleet,
            cfg,
            upload_bytes,
            seed,
            churn,
            clock: VirtualClock::new(),
            // At most `participants` uploads are ever pending: sized once,
            // steady-state scheduling never reallocates, whatever N is.
            queue: EventQueue::with_capacity(participants + 1),
            version: 0,
            in_flight: Vec::new(),
            buffer: Vec::new(),
            stats: ReliabilityTable::new(),
        }
    }

    /// Per-client upload payload in bytes (model weights + metadata).
    pub fn upload_bytes(&self) -> u64 {
        self.upload_bytes
    }

    /// The lazy device-fleet view.
    pub fn fleet(&self) -> &FleetView {
        &self.fleet
    }

    /// Updates dispatched but not yet arrived at the server.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Arrived updates waiting for the buffer to fill.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

impl RoundExecutor for BufferedExecutor {
    fn fleet(&self) -> Option<&FleetView> {
        Some(&self.fleet)
    }

    fn upload_bytes(&self) -> u64 {
        self.upload_bytes
    }

    fn staleness_discount(&self) -> StalenessDiscount {
        self.cfg.staleness
    }

    fn server_mix(&self) -> f64 {
        self.cfg.server_mix.unwrap_or(1.0)
    }

    fn in_flight_clients(&self) -> Vec<usize> {
        // Read straight off the live event state: uploads still traveling
        // plus reports parked in the partial buffer — both make their
        // client "busy" at the next dispatch.
        self.in_flight
            .iter()
            .chain(self.buffer.iter())
            .map(|(u, _)| u.client_id)
            .collect()
    }

    fn reliability(&self) -> Option<&ReliabilityTable> {
        Some(&self.stats)
    }

    fn universe(&self) -> Option<usize> {
        self.churn.as_ref().map(|c| c.universe())
    }

    fn departed_clients(&self) -> Vec<usize> {
        self.churn
            .as_ref()
            .map(|c| c.departed_ids())
            .unwrap_or_default()
    }

    fn execute(&mut self, round: usize, selected: &[usize], train: &TrainFn<'_>) -> RoundOutcome {
        let round_start_s = self.clock.now_s();
        let diurnal: Option<DiurnalConfig> = self.cfg.fleet.diurnal;

        // --- Churn: bring the arrival/departure timeline up to the
        // persistent clock before dispatching (the drain loop below keeps
        // advancing it event by event).
        let (joins_before, leaves_before) = self
            .churn
            .as_ref()
            .map_or((0, 0), |c| (c.joins(), c.leaves()));
        if let Some(churn) = self.churn.as_mut() {
            churn.advance_to(round_start_s);
            self.fleet.grow(churn.universe());
        }

        // --- Dispatch: a departed client's slot is wasted (the server
        // cannot know the device left — the failure reads as a dropout);
        // skip busy devices (still uploading an earlier version, or with
        // an unconsumed report parked in the buffer — redispatching those
        // would let one client fill several slots of a single aggregation)
        // and per-round seeded dropouts, then start everyone else training
        // against the current model version.
        let dropout_rng = Rng64::new(self.seed ^ DROPOUT_SALT).derive(round as u64);
        let mut alive: Vec<Dispatch> = Vec::with_capacity(selected.len());
        let mut dropouts = 0usize;
        let mut busy = 0usize;
        for &cid in selected {
            if self.churn.as_ref().is_some_and(|c| !c.is_active(cid)) {
                dropouts += 1;
                self.stats.entry(cid).dropouts += 1;
                continue;
            }
            let profile = self.fleet.profile(cid);
            if self.in_flight.iter().any(|(u, _)| u.client_id == cid)
                || self.buffer.iter().any(|(u, _)| u.client_id == cid)
            {
                busy += 1;
            } else {
                let p = profile.effective_dropout(diurnal.as_ref(), round_start_s);
                if p > 0.0 && dropout_rng.derive(cid as u64).chance(p) {
                    dropouts += 1;
                    self.stats.entry(cid).dropouts += 1;
                } else {
                    alive.push(Dispatch::full(cid));
                    self.stats.entry(cid).dispatches += 1;
                }
            }
        }
        let version = self.version;
        for u in dispatch_train(train, &alive, self.cfg.parallel_dispatch) {
            let arrival_s = self.clock.now_s()
                + self.fleet.profile(u.client_id).completion_time_at(
                    self.upload_bytes,
                    1.0,
                    diurnal.as_ref(),
                    round_start_s,
                );
            self.queue.schedule(
                arrival_s,
                EventKind::UploadComplete {
                    client_id: u.client_id,
                    version,
                },
            );
            self.in_flight.push((u, version));
        }

        // --- Drain arrivals (possibly from earlier versions) until the
        // buffer fills; stop immediately at `buffer_size` so later
        // arrivals stay queued for the next aggregation. The churn
        // timeline advances in lock-step with the clock: an upload whose
        // client departed before it landed is lost in transit — counted a
        // straggler, never buffered.
        let mut lost = 0usize;
        while self.buffer.len() < self.cfg.buffer_size {
            let Some(event) = self.queue.pop() else { break };
            self.clock.advance_to(event.time_s);
            let EventKind::UploadComplete { client_id, version } = event.kind else {
                unreachable!("buffered executor schedules no deadline or churn events");
            };
            let idx = self
                .in_flight
                .iter()
                .position(|(u, v)| u.client_id == client_id && *v == version)
                .expect("upload event without a matching in-flight update");
            if let Some(churn) = self.churn.as_mut() {
                churn.advance_to(event.time_s);
                if !churn.is_active(client_id) {
                    self.in_flight.swap_remove(idx);
                    lost += 1;
                    continue;
                }
            }
            self.buffer.push(self.in_flight.swap_remove(idx));
        }
        // The drain advanced churn past the dispatch instant: widen the
        // fleet view to any ids minted meanwhile, so next round's
        // selection can derive their profiles.
        if let Some(churn) = self.churn.as_ref() {
            self.fleet.grow(churn.universe());
        }

        // --- Aggregate exactly `buffer_size` updates, or nothing: a
        // partial buffer persists (the server keeps waiting while the
        // session records an empty round). Aggregating bumps the model
        // version — an empty round does not, so freshness is measured in
        // actual global-model steps.
        let mut aggregated = Vec::new();
        let mut staleness = Vec::new();
        if self.buffer.len() == self.cfg.buffer_size {
            for (mut u, trained_version) in self.buffer.drain(..) {
                u.staleness = self.version - trained_version;
                staleness.push(u.staleness);
                let s = self.stats.entry(u.client_id);
                s.aggregated += 1;
                s.staleness_sum += u.staleness;
                aggregated.push(u);
            }
            self.version += 1;
        }

        let (joined, departed) = self.churn.as_ref().map_or((0, 0), |c| {
            (c.joins() - joins_before, c.leaves() - leaves_before)
        });
        let hetero = HeteroRoundRecord {
            sim_time_s: self.clock.now_s() - round_start_s,
            dropouts,
            stragglers: lost,
            carried_in: 0,
            busy,
            buffered: self.buffer.len(),
            joined,
            departed,
            masked: 0,
            staleness,
            aggregated_ids: aggregated.iter().map(|u| u.client_id).collect(),
        };
        RoundOutcome {
            updates: aggregated,
            hetero: Some(hetero),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A weightless update for client `cid` (executor logic never touches
    /// the payload).
    fn stub_update(cid: usize) -> ClientUpdate {
        ClientUpdate {
            client_id: cid,
            weights: vec![0.0; 4],
            n_samples: 10 + cid,
            loss_before: 1.0,
            loss_after: 0.5,
            staleness: 0,
            mask: None,
        }
    }

    fn stub_train(dispatches: &[Dispatch]) -> Vec<ClientUpdate> {
        dispatches
            .iter()
            .map(|d| stub_update(d.client_id))
            .collect()
    }

    fn skewed_cfg(deadline_s: Option<f64>, dropout: f64) -> HeteroConfig {
        HeteroConfig {
            fleet: FleetConfig {
                compute_skew: 4.0,
                bandwidth_skew: 2.0,
                dropout,
                ..Default::default()
            },
            deadline_s,
            late_policy: LatePolicy::Drop,
            ..Default::default()
        }
    }

    #[test]
    fn ideal_executor_is_a_passthrough() {
        let selected = [3usize, 1, 4];
        let out = IdealExecutor.execute(0, &selected, &stub_train);
        assert!(out.hetero.is_none());
        let ids: Vec<usize> = out.updates.iter().map(|u| u.client_id).collect();
        assert_eq!(ids, vec![3, 1, 4]);
    }

    #[test]
    fn unbounded_round_time_is_max_of_completions() {
        let mut ex = DeadlineExecutor::new(skewed_cfg(None, 0.0), 8, 1000, 8, 7);
        let selected: Vec<usize> = (0..8).collect();
        let out = ex.execute(0, &selected, &stub_train);
        let h = out.hetero.unwrap();
        let expected = (0..8)
            .map(|c| ex.fleet().profile(c).completion_time_s(ex.upload_bytes()))
            .fold(0.0f64, f64::max);
        assert!((h.sim_time_s - expected).abs() < 1e-12);
        assert_eq!(h.stragglers, 0);
        assert_eq!(h.dropouts, 0);
        assert_eq!(h.aggregated(), 8);
        assert_eq!(out.updates.len(), 8);
    }

    #[test]
    fn tight_deadline_cuts_stragglers_and_caps_round_time() {
        let cfg = skewed_cfg(None, 0.0);
        let probe = DeadlineExecutor::new(cfg.clone(), 16, 1000, 16, 7);
        // Deadline at the fleet median: roughly half the devices miss it.
        let deadline = probe
            .fleet()
            .completion_percentile_s(probe.upload_bytes(), 0.5);
        let mut ex = DeadlineExecutor::new(
            HeteroConfig {
                deadline_s: Some(deadline),
                ..cfg
            },
            16,
            1000,
            16,
            7,
        );
        let selected: Vec<usize> = (0..16).collect();
        let out = ex.execute(0, &selected, &stub_train);
        let h = out.hetero.unwrap();
        assert!(h.stragglers > 0, "median deadline produced no stragglers");
        assert!(h.aggregated() < 16);
        assert_eq!(h.aggregated() + h.stragglers, 16);
        assert_eq!(h.sim_time_s, deadline);
        // Exactly the in-time devices arrived.
        for u in &out.updates {
            let t = ex
                .fleet()
                .profile(u.client_id)
                .completion_time_s(ex.upload_bytes());
            assert!(
                t <= deadline,
                "straggler {t} leaked past deadline {deadline}"
            );
        }
    }

    #[test]
    fn dropouts_are_deterministic_and_reduce_participation() {
        let mk = || DeadlineExecutor::new(skewed_cfg(None, 0.5), 10, 500, 10, 21);
        let selected: Vec<usize> = (0..10).collect();
        let (mut a, mut b) = (mk(), mk());
        let (oa, ob) = (
            a.execute(3, &selected, &stub_train),
            b.execute(3, &selected, &stub_train),
        );
        let (ha, hb) = (oa.hetero.unwrap(), ob.hetero.unwrap());
        assert_eq!(ha, hb, "same seed must reproduce the same dropouts");
        assert!(ha.dropouts > 0, "p=0.5 over 10 clients drew no dropout");
        assert_eq!(ha.aggregated() + ha.dropouts, 10);
        // A different round draws a different pattern eventually.
        let oc = a.execute(4, &selected, &stub_train);
        assert!(oc.hetero.unwrap().aggregated() <= 10);
    }

    #[test]
    fn carry_over_reinjects_late_updates_next_round() {
        let cfg = skewed_cfg(None, 0.0);
        let probe = DeadlineExecutor::new(cfg.clone(), 12, 1000, 6, 7);
        let deadline = probe
            .fleet()
            .completion_percentile_s(probe.upload_bytes(), 0.4);
        let mut ex = DeadlineExecutor::new(
            HeteroConfig {
                deadline_s: Some(deadline),
                late_policy: LatePolicy::CarryOver,
                ..cfg
            },
            12,
            1000,
            6,
            7,
        );
        // Round 0: slowest 6 clients — some miss the deadline.
        let first: Vec<usize> = (0..6).collect();
        let o0 = ex.execute(0, &first, &stub_train);
        let h0 = o0.hetero.unwrap();
        assert!(h0.stragglers > 0, "deadline cut nobody");
        // Round 1: disjoint clients; the stale updates ride along.
        let second: Vec<usize> = (6..12).collect();
        let o1 = ex.execute(1, &second, &stub_train);
        let h1 = o1.hetero.unwrap();
        assert_eq!(h1.carried_in.min(1), 1, "no stale update carried in");
        assert!(h1.aggregated() <= 6, "carry-over exceeded participant cap");
        let carried_ids: Vec<usize> = o1
            .updates
            .iter()
            .map(|u| u.client_id)
            .filter(|c| *c < 6)
            .collect();
        assert_eq!(carried_ids.len(), h1.carried_in);
    }

    #[test]
    fn queued_stale_update_waits_for_a_round_with_capacity() {
        // Homogeneous fleet, deadline below everyone's completion time:
        // every sampled client straggles and is queued under CarryOver.
        let cfg = HeteroConfig {
            fleet: FleetConfig::default(), // identical devices, ~10 s rounds
            deadline_s: Some(1.0),
            late_policy: LatePolicy::CarryOver,
            ..Default::default()
        };
        let mut ex = DeadlineExecutor::new(cfg, 8, 1000, 2, 7);
        // Round 0: clients 0, 1 straggle and are queued.
        let o0 = ex.execute(0, &[0, 1], &stub_train);
        assert_eq!(o0.hetero.unwrap().stragglers, 2);
        assert!(o0.updates.is_empty());
        // Their late updates now wait server-side: selection policies
        // must see them as pending so re-dispatch (which would supersede
        // the queued work) is a last resort.
        assert_eq!(RoundExecutor::in_flight_clients(&ex), vec![0, 1]);
        // Round 1: clients 2, 3 also straggle — zero fresh arrivals, so
        // the two queued updates finally fill the round's capacity.
        let o1 = ex.execute(1, &[2, 3], &stub_train);
        let h1 = o1.hetero.unwrap();
        assert_eq!(h1.carried_in, 2);
        assert_eq!(h1.aggregated_ids, vec![0, 1]);
        assert_eq!(
            RoundExecutor::in_flight_clients(&ex),
            vec![2, 3],
            "consumed carried updates must leave the pending set"
        );
        // Round 2: the newer stale updates (2, 3) ride in next — nothing
        // was silently discarded while capacity was available.
        let o2 = ex.execute(2, &[4, 5], &stub_train);
        assert_eq!(o2.hetero.unwrap().aggregated_ids, vec![2, 3]);
    }

    #[test]
    fn all_dropped_round_yields_no_updates() {
        let mut cfg = skewed_cfg(Some(1e6), 0.0);
        cfg.fleet.dropout = 0.999_999;
        let mut ex = DeadlineExecutor::new(cfg, 5, 100, 5, 3);
        let out = ex.execute(0, &[0, 1, 2, 3, 4], &stub_train);
        let h = out.hetero.unwrap();
        assert_eq!(h.dropouts, 5);
        assert_eq!(h.aggregated(), 0);
        assert!(out.updates.is_empty());
        assert_eq!(h.sim_time_s, 1e6, "server waits out the deadline");
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn rejects_non_positive_deadline() {
        let _ = DeadlineExecutor::new(skewed_cfg(Some(0.0), 0.0), 4, 10, 4, 1);
    }

    #[test]
    fn discount_is_one_at_zero_staleness_and_monotone() {
        let discounts = [
            StalenessDiscount::None,
            StalenessDiscount::Polynomial { alpha: 0.5 },
            StalenessDiscount::Polynomial { alpha: 2.0 },
            StalenessDiscount::Hinge { cutoff: 2 },
        ];
        for d in discounts {
            assert_eq!(d.factor(0), 1.0, "{d:?} not exactly 1 at s = 0");
            let mut prev = 1.0f32;
            for s in 1..20 {
                let f = d.factor(s);
                assert!(f > 0.0, "{d:?} hit zero at s = {s}");
                assert!(f <= prev, "{d:?} not non-increasing at s = {s}");
                prev = f;
            }
        }
        assert!((StalenessDiscount::Polynomial { alpha: 1.0 }.factor(2) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(StalenessDiscount::Hinge { cutoff: 2 }.factor(2), 1.0);
        assert!((StalenessDiscount::Hinge { cutoff: 2 }.factor(3) - 0.5).abs() < 1e-6);
        // An aggressive exponent underflows f32 but must clamp above zero:
        // an all-stale aggregation still normalizes onto the simplex.
        let harsh = StalenessDiscount::Polynomial { alpha: 100.0 };
        assert!(harsh.factor(2) > 0.0, "discount underflowed to exact zero");
        let alphas = crate::strategy::normalize_factors(&[harsh.factor(2), harsh.factor(2)]);
        assert_eq!(alphas, vec![0.5, 0.5]);
    }

    #[test]
    fn discount_validation_rejects_bad_polynomial() {
        for alpha in [f64::NAN, f64::INFINITY, -0.5] {
            let err = StalenessDiscount::Polynomial { alpha }.validate().err();
            assert!(
                matches!(err, Some(crate::error::FlError::InvalidDiscount { .. })),
                "alpha = {alpha} accepted"
            );
        }
        StalenessDiscount::Polynomial { alpha: 0.0 }
            .validate()
            .unwrap();
        StalenessDiscount::Hinge { cutoff: 0 }.validate().unwrap();
        StalenessDiscount::None.validate().unwrap();
    }

    /// Regression for the ROADMAP staleness-weighting item: a carried
    /// update two rounds stale must contribute *less* to the aggregate
    /// than a fresh arrival of equal raw weight.
    #[test]
    fn carried_update_two_rounds_stale_is_discounted_below_fresh() {
        let base = skewed_cfg(None, 0.0);
        let probe = DeadlineExecutor::new(base.clone(), 16, 1000, 2, 7);
        let deadline = probe
            .fleet()
            .completion_percentile_s(probe.upload_bytes(), 0.5);
        let mut ex = DeadlineExecutor::new(
            HeteroConfig {
                deadline_s: Some(deadline),
                late_policy: LatePolicy::CarryOver,
                staleness: StalenessDiscount::Polynomial { alpha: 1.0 },
                ..base
            },
            16,
            1000,
            2,
            7,
        );
        let in_time = |ex: &DeadlineExecutor, c: usize| {
            ex.fleet().profile(c).completion_time_s(ex.upload_bytes()) <= deadline
        };
        let fast: Vec<usize> = (0..16).filter(|&c| in_time(&ex, c)).collect();
        let slow: Vec<usize> = (0..16).filter(|&c| !in_time(&ex, c)).collect();
        assert!(
            fast.len() >= 3 && slow.len() >= 2,
            "median deadline must split the fleet"
        );

        // Round 0: two stragglers get queued, trained against model
        // version 0 (nothing aggregates, so the version stays 0).
        let o0 = ex.execute(0, &[slow[0], slow[1]], &stub_train);
        assert_eq!(o0.hetero.unwrap().stragglers, 2);
        assert!(o0.updates.is_empty());
        // Rounds 1 and 2: two fresh arrivals each fill the capacity — the
        // stale updates wait while the global advances to version 2.
        for round in [1, 2] {
            let o = ex.execute(round, &[fast[0], fast[1]], &stub_train);
            assert_eq!(o.hetero.unwrap().carried_in, 0);
        }
        // Round 3: one fresh arrival leaves one slot; the oldest stale
        // update rides in, now two model versions behind.
        let o3 = ex.execute(3, &[fast[2]], &stub_train);
        let h3 = o3.hetero.unwrap();
        assert_eq!(h3.carried_in, 1);
        assert_eq!(o3.updates.len(), 2);
        let stale = &o3.updates[0];
        let fresh = &o3.updates[1];
        assert_eq!((stale.client_id, stale.staleness), (slow[0], 2));
        assert_eq!(fresh.staleness, 0);
        assert_eq!(h3.staleness, vec![2, 0]);

        // Apply the discount exactly the way the session loop does: equal
        // raw factors end up tilted toward the fresh update.
        let d = ex.staleness_discount();
        let discounted = [d.factor(stale.staleness), d.factor(fresh.staleness)];
        let alphas = crate::strategy::normalize_factors(&discounted);
        assert!(
            alphas[0] < alphas[1],
            "2-round-stale update ({}) not discounted below fresh ({})",
            alphas[0],
            alphas[1]
        );
        assert!(
            (alphas[0] - 0.25).abs() < 1e-6,
            "1/(1+2) vs 1 should normalize to 1/4"
        );
    }

    fn buffered_cfg(skew: f64, m: usize) -> BufferedConfig {
        BufferedConfig {
            fleet: FleetConfig {
                compute_skew: skew,
                ..Default::default()
            },
            buffer_size: m,
            ..Default::default()
        }
    }

    #[test]
    fn full_buffer_on_homogeneous_fleet_behaves_synchronously() {
        let mut ex = BufferedExecutor::new(buffered_cfg(1.0, 4), 8, 1000, 4, 7);
        let step = ex.fleet().profile(0).completion_time_s(ex.upload_bytes());
        for round in 0..3 {
            let selected = [0usize, 3, 1, 2];
            let out = ex.execute(round, &selected, &stub_train);
            let h = out.hetero.unwrap();
            let ids: Vec<usize> = out.updates.iter().map(|u| u.client_id).collect();
            assert_eq!(ids, vec![0, 3, 1, 2], "round {round}: not sampling order");
            assert!(out.updates.iter().all(|u| u.staleness == 0));
            assert_eq!(h.staleness, vec![0; 4]);
            assert_eq!(h.busy, 0);
            assert_eq!(h.buffered, 0);
            assert!((h.sim_time_s - step).abs() < 1e-9, "round {round} time");
        }
        assert_eq!(ex.in_flight(), 0);
    }

    #[test]
    fn small_buffer_aggregates_fastest_arrivals_and_marks_staleness() {
        let mut ex = BufferedExecutor::new(buffered_cfg(8.0, 2), 4, 1000, 4, 7);
        let completion = |ex: &BufferedExecutor, c: usize| {
            ex.fleet().profile(c).completion_time_s(ex.upload_bytes())
        };
        let mut order: Vec<usize> = (0..4).collect();
        order.sort_by(|&a, &b| completion(&ex, a).total_cmp(&completion(&ex, b)));

        let out = ex.execute(0, &[0, 1, 2, 3], &stub_train);
        let h = out.hetero.unwrap();
        let ids: Vec<usize> = out.updates.iter().map(|u| u.client_id).collect();
        assert_eq!(
            ids,
            order[..2].to_vec(),
            "buffer must fill with the fastest uploads"
        );
        assert!((h.sim_time_s - completion(&ex, order[1])).abs() < 1e-9);
        assert_eq!(ex.in_flight(), 2, "slow updates stay in flight");

        // Next round redispatches only idle devices; the leftover uploads
        // from version 0 fill the buffer with positive staleness.
        let out1 = ex.execute(1, &[0, 1, 2, 3], &stub_train);
        let h1 = out1.hetero.unwrap();
        assert_eq!(h1.busy, 2, "in-flight devices must be skipped");
        assert_eq!(out1.updates.len(), 2);
        assert!(
            out1.updates.iter().any(|u| u.staleness > 0),
            "a version-0 upload aggregated at version 1 must be stale"
        );
        assert_eq!(
            h1.staleness,
            out1.updates.iter().map(|u| u.staleness).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_buffered_aggregation_has_exactly_buffer_size_updates() {
        let mut cfg = buffered_cfg(4.0, 3);
        cfg.fleet.dropout = 0.4;
        let mut ex = BufferedExecutor::new(cfg, 10, 500, 5, 21);
        let mut dispatched = 0usize;
        let mut aggregated = 0usize;
        let mut nonempty = 0usize;
        for round in 0..12 {
            let selected: Vec<usize> = (0..10).filter(|c| (c + round) % 2 == 0).collect();
            let out = ex.execute(round, &selected, &stub_train);
            let h = out.hetero.unwrap();
            dispatched += selected.len() - h.dropouts - h.busy;
            assert!(
                out.updates.is_empty() || out.updates.len() == 3,
                "round {round}: aggregation of {} != buffer size",
                out.updates.len()
            );
            if !out.updates.is_empty() {
                nonempty += 1;
            }
            aggregated += out.updates.len();
        }
        assert!(nonempty > 0, "no aggregation ever fired");
        assert_eq!(aggregated, 3 * nonempty);
        assert_eq!(
            dispatched,
            aggregated + ex.in_flight() + ex.buffered(),
            "dispatch accounting must close"
        );
    }

    #[test]
    fn ideal_executor_reports_no_reliability_telemetry() {
        let ex = IdealExecutor;
        assert!(RoundExecutor::reliability(&ex).is_none());
        assert!(RoundExecutor::in_flight_clients(&ex).is_empty());
    }

    #[test]
    fn deadline_telemetry_accounts_for_every_sample() {
        let mut ex = DeadlineExecutor::new(skewed_cfg(None, 0.4), 10, 500, 10, 21);
        let selected: Vec<usize> = (0..10).collect();
        let mut total_dropouts = 0;
        for round in 0..20 {
            let out = ex.execute(round, &selected, &stub_train);
            total_dropouts += out.hetero.unwrap().dropouts;
        }
        let stats = RoundExecutor::reliability(&ex).expect("deadline executor records telemetry");
        assert_eq!(stats.observed(), 10, "every sampled client was observed");
        let mut dropouts = 0;
        for (cid, s) in stats.iter() {
            // Unbounded deadline: every sample either drops or trains.
            assert_eq!(s.dropouts + s.dispatches, 20, "client {cid} samples lost");
            assert_eq!(s.aggregated, s.dispatches, "client {cid} updates lost");
            assert!((0.0..=1.0).contains(&s.dropout_rate()));
            dropouts += s.dropouts;
        }
        assert_eq!(
            dropouts, total_dropouts,
            "per-client dropouts disagree with telemetry"
        );
        // p = 0.4 over 200 samples: the observed rates must spread around
        // the configured one rather than collapse to 0 or 1.
        let mean_rate: f64 = stats.iter().map(|(_, s)| s.dropout_rate()).sum::<f64>() / 10.0;
        assert!(
            (0.15..0.65).contains(&mean_rate),
            "implausible mean rate {mean_rate}"
        );
        // Round-barrier executor: nothing is ever in flight between rounds.
        assert!(RoundExecutor::in_flight_clients(&ex).is_empty());
    }

    #[test]
    fn buffered_in_flight_accessor_reads_the_live_queue() {
        let mut ex = BufferedExecutor::new(buffered_cfg(8.0, 2), 4, 1000, 4, 7);
        let out = ex.execute(0, &[0, 1, 2, 3], &stub_train);
        assert_eq!(out.updates.len(), 2);
        let in_flight = RoundExecutor::in_flight_clients(&ex);
        assert_eq!(in_flight.len(), ex.in_flight() + ex.buffered());
        // The two slow uploads still traveling are exactly the sampled
        // clients whose updates did not aggregate.
        let aggregated: Vec<usize> = out.updates.iter().map(|u| u.client_id).collect();
        for cid in 0..4usize {
            assert_eq!(
                in_flight.contains(&cid),
                !aggregated.contains(&cid),
                "client {cid} in-flight state wrong"
            );
        }
        // Telemetry: everyone was dispatched once, the fast pair aggregated.
        let stats = RoundExecutor::reliability(&ex).unwrap();
        assert_eq!(stats.observed(), 4);
        for (cid, s) in stats.iter() {
            assert_eq!(s.dispatches, 1);
            assert_eq!(s.aggregated, usize::from(aggregated.contains(&cid)));
        }
    }

    /// Sparse telemetry: an unobserved client reads as the zero record,
    /// resident entries track *observed* clients only, and totals close.
    #[test]
    fn reliability_table_is_sparse_over_observed_clients() {
        let mut ex = DeadlineExecutor::new(skewed_cfg(None, 0.0), 1_000, 500, 4, 21);
        let out = ex.execute(0, &[3, 900, 17], &stub_train);
        assert_eq!(out.updates.len(), 3);
        let stats = RoundExecutor::reliability(&ex).unwrap();
        assert_eq!(
            stats.observed(),
            3,
            "telemetry must be resident only for dispatched clients"
        );
        assert_eq!(stats.get(3).dispatches, 1);
        assert_eq!(stats.get(900).aggregated, 1);
        assert_eq!(stats.get(999), ClientReliability::default());
        let ids: Vec<usize> = stats.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![3, 17, 900], "iteration must be id-ordered");
        let t = stats.totals();
        assert_eq!((t.dispatches, t.aggregated, t.dropouts), (3, 3, 0));
    }

    /// Parallel dispatch must reproduce the serial outcome bit-for-bit on
    /// both executor families (the train stub maps clients independently,
    /// as the session's per-client RNG streams do).
    #[test]
    fn parallel_dispatch_is_bit_identical_to_serial() {
        let run_deadline = |parallel: bool| {
            let cfg = HeteroConfig {
                parallel_dispatch: parallel,
                ..skewed_cfg(None, 0.3)
            };
            let mut ex = DeadlineExecutor::new(cfg, 32, 500, 8, 9);
            (0..6)
                .map(|round| {
                    let selected: Vec<usize> = (0..32).filter(|c| (c + round) % 4 == 0).collect();
                    let out = ex.execute(round, &selected, &stub_train);
                    (
                        out.updates
                            .iter()
                            .map(|u| (u.client_id, u.staleness))
                            .collect::<Vec<_>>(),
                        out.hetero.unwrap(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run_deadline(false), run_deadline(true));

        let run_buffered = |parallel: bool| {
            let mut cfg = buffered_cfg(4.0, 3);
            cfg.fleet.dropout = 0.2;
            cfg.parallel_dispatch = parallel;
            let mut ex = BufferedExecutor::new(cfg, 32, 500, 8, 9);
            (0..10)
                .map(|round| {
                    let selected: Vec<usize> = (0..32).filter(|c| (c + round) % 4 == 0).collect();
                    let out = ex.execute(round, &selected, &stub_train);
                    (
                        out.updates
                            .iter()
                            .map(|u| (u.client_id, u.staleness))
                            .collect::<Vec<_>>(),
                        out.hetero.unwrap(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run_buffered(false), run_buffered(true));
    }

    #[test]
    fn reliability_rates_default_to_zero_when_unobserved() {
        let s = ClientReliability::default();
        assert_eq!(s.dropout_rate(), 0.0);
        assert_eq!(s.mean_staleness(), 0.0);
        let s = ClientReliability {
            dropouts: 3,
            dispatches: 1,
            aggregated: 2,
            staleness_sum: 5,
        };
        assert!((s.dropout_rate() - 0.75).abs() < 1e-12);
        assert!((s.mean_staleness() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn structured_dropout_rescues_foregone_stragglers_as_sub_models() {
        let base = skewed_cfg(None, 0.0);
        let probe = DeadlineExecutor::new(base.clone(), 16, 1000, 16, 7);
        let deadline = probe
            .fleet()
            .completion_percentile_s(probe.upload_bytes(), 0.5);
        let run = |sd: Option<StructuredDropoutConfig>| {
            let mut ex = DeadlineExecutor::new(
                HeteroConfig {
                    deadline_s: Some(deadline),
                    structured_dropout: sd,
                    ..base.clone()
                },
                16,
                1000,
                16,
                7,
            );
            let selected: Vec<usize> = (0..16).collect();
            ex.execute(0, &selected, &stub_train).hetero.unwrap()
        };
        let plain = run(None);
        assert!(plain.stragglers > 0, "median deadline cut nobody");
        assert_eq!(plain.masked, 0);
        let adaptive = run(Some(StructuredDropoutConfig::default()));
        assert!(adaptive.masked > 0, "no straggler was offered a sub-model");
        // Every rescued sub-model was sized to fit the deadline, so each
        // one lands as an extra aggregated update.
        assert_eq!(adaptive.aggregated(), plain.aggregated() + adaptive.masked);
        assert_eq!(
            adaptive.stragglers + adaptive.masked,
            plain.stragglers,
            "rescues must come one-for-one out of the straggler count"
        );
    }

    #[test]
    fn structured_dropout_config_validates_its_grid() {
        use crate::error::FlError;
        assert!(StructuredDropoutConfig::default().validate().is_ok());
        for bad in [0.0, 1.0, -0.5, f64::NAN] {
            let cfg = StructuredDropoutConfig {
                min_ratio: bad,
                levels: 4,
            };
            assert!(
                matches!(cfg.validate(), Err(FlError::InvalidDynamics { .. })),
                "min_ratio {bad} accepted"
            );
        }
        let cfg = StructuredDropoutConfig {
            min_ratio: 0.5,
            levels: 0,
        };
        assert!(matches!(
            cfg.validate(),
            Err(FlError::InvalidDynamics { .. })
        ));
        // The grid is largest-first, strictly below 1, floored at min_ratio.
        let ratios: Vec<f64> = StructuredDropoutConfig::default().ratios_desc().collect();
        assert_eq!(ratios, vec![0.8125, 0.625, 0.4375, 0.25]);
    }

    #[test]
    fn churned_out_clients_waste_their_dispatch_as_dropouts() {
        use feddrl_sim::device::ChurnConfig;
        let mut cfg = skewed_cfg(Some(12.0), 0.0);
        cfg.fleet.churn = Some(ChurnConfig {
            mean_arrival_gap_s: 1e18,
            mean_departure_gap_s: 2.0,
        });
        let mut ex = DeadlineExecutor::new(cfg, 8, 1000, 8, 7);
        let selected: Vec<usize> = (0..8).collect();
        let h0 = ex.execute(0, &selected, &stub_train).hetero.unwrap();
        // The 12 s round window ticked the churn clock forward: with a 2 s
        // mean departure gap several devices left during the round.
        let departed = RoundExecutor::departed_clients(&ex);
        assert!(!departed.is_empty(), "no departures in a 12 s window");
        assert_eq!(h0.departed, departed.len());
        assert_eq!(h0.joined, 0);
        assert_eq!(RoundExecutor::universe(&ex), Some(8), "no arrivals");
        // Re-sampling the departed clients wastes every slot as a dropout
        // — the server only learns of a departure by dispatches that stop
        // answering, which is exactly what the telemetry records.
        let before: usize = departed.iter().map(|&c| ex.stats.get(c).dropouts).sum();
        let o1 = ex.execute(1, &departed, &stub_train);
        let h1 = o1.hetero.unwrap();
        assert_eq!(h1.dropouts, departed.len());
        assert!(o1.updates.is_empty());
        let after: usize = departed.iter().map(|&c| ex.stats.get(c).dropouts).sum();
        assert_eq!(after - before, departed.len());
    }

    #[test]
    fn churn_arrivals_grow_the_universe_and_become_selectable() {
        use feddrl_sim::device::ChurnConfig;
        let mut cfg = skewed_cfg(None, 0.0);
        cfg.fleet.churn = Some(ChurnConfig {
            mean_arrival_gap_s: 3.0,
            mean_departure_gap_s: 1e18,
        });
        let mut ex = DeadlineExecutor::new(cfg, 4, 1000, 8, 7);
        let h0 = ex.execute(0, &[0, 1, 2, 3], &stub_train).hetero.unwrap();
        let universe = RoundExecutor::universe(&ex).unwrap();
        assert!(universe > 4, "no arrivals over a multi-second round");
        assert_eq!(h0.joined, universe - 4);
        assert!(RoundExecutor::departed_clients(&ex).is_empty());
        // A minted id is immediately selectable: its profile derives on
        // demand and it trains like any founding client.
        let newcomer = universe - 1;
        let o1 = ex.execute(1, &[newcomer], &stub_train);
        assert_eq!(o1.updates.len(), 1);
        assert_eq!(o1.updates[0].client_id, newcomer);
        assert_eq!(ex.stats.get(newcomer).dispatches, 1);
    }

    #[test]
    fn buffered_dispatch_accounting_closes_under_churn() {
        use feddrl_sim::device::ChurnConfig;
        let mut cfg = buffered_cfg(4.0, 2);
        cfg.fleet.churn = Some(ChurnConfig {
            mean_arrival_gap_s: 5.0,
            mean_departure_gap_s: 4.0,
        });
        let mut ex = BufferedExecutor::new(cfg, 6, 500, 4, 21);
        let (mut dispatched, mut aggregated, mut lost) = (0usize, 0usize, 0usize);
        for round in 0..15 {
            let universe = RoundExecutor::universe(&ex).unwrap();
            let selected: Vec<usize> = (0..universe).filter(|c| (c + round) % 2 == 0).collect();
            let out = ex.execute(round, &selected, &stub_train);
            let h = out.hetero.unwrap();
            dispatched += selected.len() - h.dropouts - h.busy;
            aggregated += out.updates.len();
            lost += h.stragglers;
        }
        // Every dispatch is aggregated, lost to a mid-flight departure,
        // still traveling, or parked in the partial buffer.
        assert_eq!(
            dispatched,
            aggregated + lost + ex.in_flight() + ex.buffered(),
            "dispatch accounting must close under churn"
        );
        assert!(aggregated > 0, "churn starved every aggregation");
    }

    #[test]
    #[should_panic(expected = "buffer must be positive")]
    fn buffered_rejects_zero_buffer() {
        let _ = BufferedExecutor::new(buffered_cfg(1.0, 0), 4, 10, 4, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds participants")]
    fn buffered_rejects_buffer_wider_than_participants() {
        let _ = BufferedExecutor::new(buffered_cfg(1.0, 5), 8, 10, 4, 1);
    }
}
