//! Session-based federated orchestration: the paper's Algorithm 2 as a
//! driveable object.
//!
//! [`SessionBuilder`] assembles a federated run from its components —
//! model spec, datasets, partition, strategy, executor, selection policy,
//! observers — validating the configuration up front and returning typed
//! [`FlError`]s instead of panicking mid-run. The built [`Session`] can be
//! driven to completion with [`Session::run`] or one communication round
//! at a time with [`Session::step`] (for interleaving with checkpointing,
//! hyper-parameter control, or an external event loop); both paths produce
//! identical [`RunHistory`]s.
//!
//! Per round the session: asks the [`SelectionPolicy`] for `K` of `N`
//! clients (feeding it per-client losses, participation counts and the
//! executor's device fleet), hands them to the configured
//! [`RoundExecutor`] — which trains them
//! *in parallel* (one crossbeam task per client) and decides which reports
//! make it back, and when — then asks the [`Strategy`] for impact factors
//! over the updates that arrived, applies the weighted aggregation of
//! Eq. 4, evaluates the new global model, and notifies every
//! [`RoundObserver`]. Timing of the two server-side stages is recorded
//! separately to reproduce Figure 9.
//!
//! Determinism: client-local randomness is derived from
//! `(master seed, round, client id)`, so results are independent of thread
//! scheduling, and a default-component session is byte-identical to the
//! historical `run_federated` loop (enforced by the committed golden
//! fixture).

use crate::client::{dispatch_mask, run_local_round, run_local_round_masked, ClientUpdate};
use crate::error::FlError;
use crate::executor::{Dispatch, ExecutorConfig, RoundExecutor};
use crate::history::{RoundRecord, RunHistory};
use crate::metrics::evaluate;
use crate::selection::{Selection, SelectionContext, SelectionPolicy};
use crate::server::FlConfig;
use crate::strategy::{
    masked_weighted_average, normalize_factors, weighted_average, RoundContext, Strategy,
};
use feddrl_data::dataset::Dataset;
use feddrl_data::partition::Partition;
use feddrl_nn::model::Sequential;
use feddrl_nn::parallel::par_map;
use feddrl_nn::rng::Rng64;
use feddrl_nn::zoo::ModelSpec;
use std::time::Instant;

/// What an observer tells the session after seeing a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundControl {
    /// Keep training.
    Continue,
    /// Stop the run after this round (its record is kept). Any observer
    /// returning `Stop` stops the session.
    Stop,
}

/// Everything an observer sees at the end of a round: the round's own
/// [`RoundRecord`] plus run-cumulative reliability telemetry the session
/// maintains incrementally — so an observer can log or stop on
/// dropout/staleness/sim-time signals without replaying the whole
/// [`RunHistory`] after the fact.
pub struct RoundSignals<'a> {
    /// The completed round's full record.
    pub record: &'a RoundRecord,
    /// Sampled-client dropouts over the run so far (this round included).
    pub total_dropouts: usize,
    /// Deadline-cut stragglers over the run so far.
    pub total_stragglers: usize,
    /// Cumulative simulated wall-clock in seconds (0 under the ideal
    /// executor, where no virtual time passes).
    pub sim_time_s: f64,
    /// Mean staleness over every update aggregated so far (0 while
    /// nothing stale was aggregated).
    pub mean_staleness: f64,
    /// Clients whose update is still in flight after this round
    /// (asynchronous executors only; 0 at every round barrier).
    pub in_flight: usize,
}

/// An on-round-end hook: receives every completed round's
/// [`RoundSignals`] and may stop the run early. Replaces the old
/// hardcoded `log_every` stderr print (now the [`ProgressLogger`]
/// built-in) and enables early-stopping / checkpointing / live-metrics /
/// reliability-watchdog observers without touching the round loop.
pub trait RoundObserver: Send {
    /// Called once per completed round with its record and the run's
    /// cumulative telemetry.
    fn on_round_end(&mut self, signals: &RoundSignals<'_>) -> RoundControl;
}

/// Prints `[method] round    N: acc A loss L` to stderr every `every`
/// rounds — the built-in that preserves `FlConfig::log_every` behavior
/// (the builder installs one automatically when `log_every > 0`).
pub struct ProgressLogger {
    every: usize,
    method: String,
}

impl ProgressLogger {
    /// Log every `every` rounds under the `method` tag (0 never logs).
    pub fn new(every: usize, method: impl Into<String>) -> Self {
        Self {
            every,
            method: method.into(),
        }
    }
}

impl RoundObserver for ProgressLogger {
    fn on_round_end(&mut self, signals: &RoundSignals<'_>) -> RoundControl {
        let record = signals.record;
        if self.every > 0 && record.round.is_multiple_of(self.every) {
            // Reliability telemetry rides along only when an executor
            // produces it, so ideal-executor logs keep their exact
            // historical shape.
            let reliability = if record.hetero.is_some() {
                format!(
                    " | drop {} strag {} stale {:.2}",
                    signals.total_dropouts, signals.total_stragglers, signals.mean_staleness
                )
            } else {
                String::new()
            };
            eprintln!(
                "[{}] round {:>4}: acc {:.4} loss {:.4}{reliability}",
                self.method, record.round, record.test_accuracy, record.test_loss
            );
        }
        RoundControl::Continue
    }
}

/// Stops the run once test accuracy reaches a target (a budget saver for
/// sweeps that only ask "how many rounds to X%").
pub struct EarlyStop {
    /// Stop as soon as `test_accuracy >= target_accuracy`.
    pub target_accuracy: f32,
}

impl RoundObserver for EarlyStop {
    fn on_round_end(&mut self, signals: &RoundSignals<'_>) -> RoundControl {
        if signals.record.test_accuracy >= self.target_accuracy {
            RoundControl::Stop
        } else {
            RoundControl::Continue
        }
    }
}

/// What a [`SessionTrainFn`] override sees when the executor asks it to
/// train a dispatch batch: the round, the master seed, and the flat
/// parameters of the global model broadcast this round — everything the
/// default (real-training) callback derives its per-client RNG streams
/// and model clones from.
pub struct TrainContext<'a> {
    /// Communication round being executed (0-based).
    pub round: usize,
    /// The session's master seed (client streams derive from
    /// `(seed, round, client_id)`).
    pub seed: u64,
    /// Flat parameters of the global model broadcast this round.
    pub global: &'a [f32],
}

/// A session-level override for local training, installed with
/// [`SessionBuilder::train_fn`]: given the round's [`TrainContext`] and
/// the executor's dispatch orders, produce the client updates. Replaces
/// the built-in real-training callback — deterministic stubs make
/// executor-reduction tests (and transport benchmarks) independent of
/// training compute, while the loopback runtime uses it to mirror what
/// its remote workers compute.
pub type SessionTrainFn<'a> =
    dyn Fn(&TrainContext<'_>, &[Dispatch]) -> Vec<ClientUpdate> + Sync + 'a;

/// Builder for a federated [`Session`].
///
/// The five required components (model spec, train/test sets, partition,
/// strategy) come in through [`SessionBuilder::new`]; everything else has
/// the paper's defaults and is overridden fluently. [`SessionBuilder::build`]
/// validates the assembled configuration and returns typed [`FlError`]s
/// for the mistakes the old free function panicked on.
///
/// ```
/// use feddrl_fl::prelude::*;
/// use feddrl_data::prelude::*;
/// use feddrl_nn::prelude::*;
///
/// let (train, test) = SynthSpec { train_size: 600, test_size: 200,
///     ..SynthSpec::mnist_like() }.generate(1);
/// let partition = PartitionMethod::Iid
///     .partition(&train, 4, &mut Rng64::new(2)).unwrap();
/// let spec = ModelSpec::Mlp { in_dim: train.feature_dim(),
///     hidden: vec![16], out_dim: train.num_classes() };
/// let mut strategy = FedAvg;
/// let history = SessionBuilder::new(&spec, &train, &test, &partition, &mut strategy)
///     .rounds(2)
///     .participants(4)
///     .dataset_name("mnist-like")
///     .build()
///     .unwrap()
///     .run()
///     .unwrap();
/// assert_eq!(history.records.len(), 2);
/// assert_eq!(history.dataset, "mnist-like");
/// ```
pub struct SessionBuilder<'a> {
    spec: &'a ModelSpec,
    train: &'a Dataset,
    test: &'a Dataset,
    partition: &'a Partition,
    strategy: &'a mut dyn Strategy,
    cfg: FlConfig,
    dataset_name: String,
    policy: Option<Box<dyn SelectionPolicy>>,
    executor_instance: Option<Box<dyn RoundExecutor>>,
    train_override: Option<Box<SessionTrainFn<'a>>>,
    observers: Vec<Box<dyn RoundObserver>>,
}

impl<'a> SessionBuilder<'a> {
    /// Start a builder from the five required components, with
    /// [`FlConfig::default`] for everything else.
    pub fn new(
        spec: &'a ModelSpec,
        train: &'a Dataset,
        test: &'a Dataset,
        partition: &'a Partition,
        strategy: &'a mut dyn Strategy,
    ) -> Self {
        Self {
            spec,
            train,
            test,
            partition,
            strategy,
            cfg: FlConfig::default(),
            dataset_name: String::new(),
            policy: None,
            executor_instance: None,
            train_override: None,
            observers: Vec::new(),
        }
    }

    /// Replace the whole orchestration config at once (the serializable
    /// form used by experiment harnesses and the compat wrapper).
    pub fn config(mut self, cfg: &FlConfig) -> Self {
        self.cfg = cfg.clone();
        self
    }

    /// Communication rounds `T`.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.cfg.rounds = rounds;
        self
    }

    /// Participating clients per round `K`.
    pub fn participants(mut self, participants: usize) -> Self {
        self.cfg.participants = participants;
        self
    }

    /// Local solver settings.
    pub fn local(mut self, local: crate::client::LocalTrainConfig) -> Self {
        self.cfg.local = local;
        self
    }

    /// Evaluation batch size.
    pub fn eval_batch(mut self, eval_batch: usize) -> Self {
        self.cfg.eval_batch = eval_batch;
        self
    }

    /// Master seed; every random stream of the run derives from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Print progress to stderr every `log_every` rounds (0 = silent);
    /// implemented as an auto-installed [`ProgressLogger`] observer.
    pub fn log_every(mut self, log_every: usize) -> Self {
        self.cfg.log_every = log_every;
        self
    }

    /// Config-level selection policy (built via [`Selection::build`];
    /// a [`SessionBuilder::selection_policy`] override wins over this).
    pub fn selection(mut self, selection: Selection) -> Self {
        self.cfg.selection = selection;
        self
    }

    /// Plug in a custom [`SelectionPolicy`] instance, overriding the
    /// config-level [`Selection`].
    pub fn selection_policy(mut self, policy: Box<dyn SelectionPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Round-execution model (ideal synchronous, deadline-bounded, or
    /// buffered asynchronous).
    pub fn executor(mut self, executor: ExecutorConfig) -> Self {
        self.cfg.executor = executor;
        self
    }

    /// Server-side optimizer applied to the aggregated model each round
    /// (plain Eq. 4 replacement by default; FedAdam/FedYogi/FedAMSGrad
    /// step along the pseudo-gradient instead, carrying moment state
    /// across rounds for the session's lifetime).
    pub fn server_opt(mut self, server_opt: crate::server_opt::ServerOptConfig) -> Self {
        self.cfg.server_opt = server_opt;
        self
    }

    /// Plug in a pre-built [`RoundExecutor`] instance, overriding the
    /// config-level [`ExecutorConfig`] (the executor-instance analogue of
    /// [`SessionBuilder::selection_policy`]). This is how executors that
    /// cannot be described by serializable config — the networked runtime's
    /// `NetworkExecutor`, which owns live sockets — plug into an otherwise
    /// unchanged session.
    pub fn executor_instance(mut self, executor: Box<dyn RoundExecutor>) -> Self {
        self.executor_instance = Some(executor);
        self
    }

    /// Replace the built-in real-training callback with a
    /// [`SessionTrainFn`] override. The executor still decides *which*
    /// clients train and when their reports land; only the local-training
    /// computation itself is substituted. Selection, aggregation,
    /// evaluation and every RNG stream are untouched, so two sessions
    /// differing only in executor stay comparable update-for-update.
    pub fn train_fn(mut self, train: Box<SessionTrainFn<'a>>) -> Self {
        self.train_override = Some(train);
        self
    }

    /// Register an on-round-end observer (called in registration order,
    /// after the `log_every` logger if one is installed).
    pub fn observer(mut self, observer: Box<dyn RoundObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Dataset name recorded in the resulting [`RunHistory`] (defaults to
    /// empty, matching the historical `run_federated` output).
    pub fn dataset_name(mut self, name: impl Into<String>) -> Self {
        self.dataset_name = name.into();
        self
    }

    /// Validate the assembled configuration and build the [`Session`].
    ///
    /// # Errors
    /// * [`FlError::ZeroRounds`] / [`FlError::ZeroParticipants`] on empty
    ///   run dimensions;
    /// * [`FlError::ParticipantsExceedClients`] when `K > N`;
    /// * [`FlError::InvalidDeadline`] / [`FlError::InvalidFleet`] when a
    ///   deadline executor is configured with a degenerate heterogeneity
    ///   model;
    /// * [`FlError::ZeroBuffer`] / [`FlError::BufferExceedsParticipants`] /
    ///   [`FlError::InvalidDiscount`] when a buffered executor's
    ///   aggregation buffer or staleness discount is degenerate.
    pub fn build(self) -> Result<Session<'a>, FlError> {
        let n_clients = self.partition.n_clients();
        let cfg = &self.cfg;
        cfg.validate(n_clients)?;

        // Assembly order mirrors the historical loop exactly so the RNG
        // streams (and therefore the histories) stay byte-identical.
        let mut master = Rng64::new(cfg.seed);
        let global = self.spec.build(master.next_u64());
        let mut local_cfg = cfg.local.clone();
        local_cfg.proximal_mu = self.strategy.proximal_mu();
        let executor = match self.executor_instance {
            Some(executor) => executor,
            None => cfg
                .executor
                .build(n_clients, global.param_count(), cfg.participants, cfg.seed),
        };
        let policy = match self.policy {
            Some(p) => p,
            None => cfg.selection.build(),
        };
        let mut observers = Vec::new();
        if cfg.log_every > 0 {
            observers.push(
                Box::new(ProgressLogger::new(cfg.log_every, self.strategy.name()))
                    as Box<dyn RoundObserver>,
            );
        }
        observers.extend(self.observers);

        let method = self.strategy.name().to_string();
        let rounds = cfg.rounds;
        let server_opt = cfg.server_opt.build();
        Ok(Session {
            train: self.train,
            test: self.test,
            partition: self.partition,
            strategy: self.strategy,
            cfg: self.cfg,
            dataset_name: self.dataset_name,
            method,
            n_clients,
            master,
            global,
            local_cfg,
            executor,
            policy,
            server_opt,
            train_override: self.train_override,
            observers,
            known_loss: vec![None; n_clients],
            participation: vec![0; n_clients],
            records: Vec::with_capacity(rounds),
            round: 0,
            stopped: false,
            total_dropouts: 0,
            total_stragglers: 0,
            cum_sim_time_s: 0.0,
            staleness_sum: 0,
            staleness_count: 0,
        })
    }
}

/// A validated, in-progress federated run. Created by
/// [`SessionBuilder::build`]; driven by [`Session::run`] or
/// [`Session::step`].
pub struct Session<'a> {
    train: &'a Dataset,
    test: &'a Dataset,
    partition: &'a Partition,
    strategy: &'a mut dyn Strategy,
    cfg: FlConfig,
    dataset_name: String,
    method: String,
    n_clients: usize,
    master: Rng64,
    global: Sequential,
    local_cfg: crate::client::LocalTrainConfig,
    executor: Box<dyn RoundExecutor>,
    policy: Box<dyn SelectionPolicy>,
    server_opt: Box<dyn crate::server_opt::ServerOpt>,
    train_override: Option<Box<SessionTrainFn<'a>>>,
    observers: Vec<Box<dyn RoundObserver>>,
    known_loss: Vec<Option<f32>>,
    participation: Vec<usize>,
    records: Vec<RoundRecord>,
    round: usize,
    stopped: bool,
    // Running totals feeding every round's `RoundSignals` — maintained
    // incrementally so observers never pay a replay of the history.
    total_dropouts: usize,
    total_stragglers: usize,
    cum_sim_time_s: f64,
    staleness_sum: usize,
    staleness_count: usize,
}

impl<'a> Session<'a> {
    /// Rounds completed so far.
    pub fn rounds_completed(&self) -> usize {
        self.records.len()
    }

    /// Whether the session has finished (all rounds done, or an observer
    /// stopped it). [`Session::step`] on a finished session is a no-op
    /// returning `Ok(None)`.
    pub fn is_finished(&self) -> bool {
        self.stopped || self.round >= self.cfg.rounds
    }

    /// The per-round records produced so far.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Flat parameters of the current global model (e.g. for external
    /// checkpointing between [`Session::step`] calls).
    pub fn global_params(&self) -> Vec<f32> {
        self.global.flat_params()
    }

    /// Execute one communication round; `Ok(None)` once the session is
    /// finished.
    ///
    /// # Errors
    /// [`FlError::InvalidSelection`] when a (user-provided) selection
    /// policy returns a sample that is not exactly `K` distinct in-range
    /// client ids.
    pub fn step(&mut self) -> Result<Option<&RoundRecord>, FlError> {
        if self.is_finished() {
            return Ok(None);
        }
        let round = self.round;

        // --- Fleet growth under churn: clients that joined since the last
        // round enter the federation with an optimistic prior (no known
        // loss, zero participation) and become selectable this round.
        // `None` (every churn-free executor) leaves `n_clients` at the
        // partition's count and this block is a no-op.
        if let Some(universe) = self.executor.universe() {
            if universe > self.n_clients {
                self.known_loss.resize(universe, None);
                self.participation.resize(universe, 0);
                self.n_clients = universe;
            }
        }

        // --- Client selection (Algorithm 2; uniform by default). The
        // policy draws from the per-round stream `(master seed, round)`.
        let mut select_rng = self.master.derive(round as u64);
        let in_flight = self.executor.in_flight_clients();
        let departed = self.executor.departed_clients();
        let selected = {
            let ctx = SelectionContext {
                round,
                n_clients: self.n_clients,
                participants: self.cfg.participants,
                known_loss: &self.known_loss,
                participation: &self.participation,
                fleet: self.executor.fleet(),
                upload_bytes: self.executor.upload_bytes(),
                deadline_s: self.executor.deadline_s(),
                in_flight: &in_flight,
                reliability: self.executor.reliability(),
                departed: &departed,
            };
            self.policy.select(&ctx, &mut select_rng)
        };
        validate_selection(&selected, self.n_clients, self.cfg.participants, round)?;
        for &c in &selected {
            self.participation[c] += 1;
        }

        // --- Round execution: the executor trains the (non-dropped)
        // clients in parallel — one crossbeam task each — and returns the
        // updates that made it back in time.
        let global_flat = self.global.flat_params();
        let global = &self.global;
        let train_set = self.train;
        let partition = self.partition;
        let local_cfg = &self.local_cfg;
        let seed = self.cfg.seed;
        // Clients that joined under churn have ids beyond the fixed data
        // partition; they train on a shard chosen by residue — the
        // identity map for every original id, so churn-free runs keep
        // their exact historical shards.
        let n_shards = partition.n_clients();
        let train_subset = |dispatches: &[Dispatch]| -> Vec<ClientUpdate> {
            par_map(dispatches, |_, &d| {
                let client_id = d.client_id;
                // The clone already carries the broadcast params exactly
                // (`global` does not change mid-round).
                let model = global.clone();
                let mut rng = Rng64::new(seed ^ 0xC11E)
                    .derive(round as u64)
                    .derive(client_id as u64);
                if d.keep_ratio < 1.0 {
                    // Structured sub-model dispatch: the mask comes from
                    // its own salted stream so full-model training (and
                    // every pre-dynamics history) never consumes it. The
                    // shared `dispatch_mask` helper is the same derivation
                    // networked workers use, which is what makes wire-level
                    // masked dispatch bit-identical to this path.
                    let mask =
                        dispatch_mask(&model, seed, round as u64, client_id as u64, d.keep_ratio);
                    run_local_round_masked(
                        model,
                        train_set,
                        partition.client(client_id % n_shards),
                        client_id,
                        local_cfg,
                        mask,
                        &mut rng,
                    )
                } else {
                    run_local_round(
                        model,
                        train_set,
                        partition.client(client_id % n_shards),
                        client_id,
                        local_cfg,
                        &mut rng,
                    )
                }
            })
        };
        // Distributed executors fan the broadcast weights out to their
        // remote workers here; every in-process executor keeps the no-op
        // default (its `train` callback clones the live model directly).
        self.executor.publish_model(round, &global_flat);
        let outcome = match &self.train_override {
            Some(train) => {
                let ctx = TrainContext {
                    round,
                    seed,
                    global: &global_flat,
                };
                let stubbed = |dispatches: &[Dispatch]| train(&ctx, dispatches);
                self.executor.execute(round, &selected, &stubbed)
            }
            None => self.executor.execute(round, &selected, &train_subset),
        };
        let updates = outcome.updates;

        // --- Impact factors (the strategy's decision; DRL inference for
        // FedDRL) — timed separately for Figure 9. A round where nothing
        // arrived (everyone dropped or missed the deadline) leaves the
        // global model untouched and the strategy un-consulted.
        let (alphas, strategy_micros, aggregate_micros) = if updates.is_empty() {
            (Vec::new(), 0, 0)
        } else {
            let t0 = Instant::now();
            let raw = self.strategy.impact_factors_ctx(&RoundContext {
                round,
                global_weights: &global_flat,
                updates: &updates,
            });
            let strategy_micros = t0.elapsed().as_micros() as u64;
            assert_eq!(
                raw.len(),
                updates.len(),
                "strategy returned {} factors for {} clients",
                raw.len(),
                updates.len()
            );
            // Staleness discounting (asynchronous/carry-over executors):
            // scale each raw factor by the executor's discount for that
            // update's age, *before* simplex normalization, so weight is
            // redistributed toward fresher updates. `None` (every fresh-
            // only executor) leaves the historical code path untouched.
            let discount = self.executor.staleness_discount();
            let raw = if discount == crate::executor::StalenessDiscount::None {
                raw
            } else {
                raw.iter()
                    .zip(updates.iter())
                    .map(|(&f, u)| f * discount.factor(u.staleness))
                    .collect()
            };
            let alphas = normalize_factors(&raw);

            // --- Weighted aggregation (Eq. 4), optionally blended into
            // the current global at the executor's server mixing rate
            // (`η = 1`, every round-barrier executor, is the paper's pure
            // replacement and skips the blend entirely). Sub-model updates
            // (adaptive structured dropout) route through the mask-aware
            // per-position average; rounds where every update is full keep
            // the historical dense path bit-for-bit.
            let t1 = Instant::now();
            let any_masked = updates
                .iter()
                .any(|u| u.mask.as_ref().is_some_and(|m| !m.is_full()));
            let mut new_global = if any_masked {
                masked_weighted_average(&global_flat, &updates, &alphas)
            } else {
                let weight_refs: Vec<&[f32]> =
                    updates.iter().map(|u| u.weights.as_slice()).collect();
                weighted_average(&weight_refs, &alphas)
            };
            let eta = self.executor.server_mix();
            if eta < 1.0 {
                let eta = eta as f32;
                for (w, &g) in new_global.iter_mut().zip(global_flat.iter()) {
                    *w = (1.0 - eta) * g + eta * *w;
                }
            }
            // --- Server optimizer: fold the aggregation target into the
            // next global model. The default `Plain` returns `new_global`
            // untouched (no arithmetic — the historical replacement path,
            // bit-for-bit); the adaptive optimizers step along the
            // pseudo-gradient `Δ = new_global − global`, carrying moment
            // state in the session across rounds.
            let new_global = self.server_opt.apply(&global_flat, new_global);
            let aggregate_micros = t1.elapsed().as_micros() as u64;
            self.global.set_flat_params(&new_global);
            (alphas, strategy_micros, aggregate_micros)
        };

        for u in &updates {
            self.known_loss[u.client_id] = Some(u.loss_before);
        }

        // --- Evaluation.
        let (test_accuracy, test_loss) = evaluate(&mut self.global, self.test, self.cfg.eval_batch);
        let record = RoundRecord {
            round,
            test_accuracy,
            test_loss,
            selected,
            impact_factors: alphas,
            client_losses_before: updates.iter().map(|u| u.loss_before).collect(),
            strategy_micros,
            aggregate_micros,
            hetero: outcome.hetero,
        };
        self.records.push(record);
        self.round += 1;

        // --- Observers (the logger first, then user hooks, in order),
        // fed the round record plus the run's cumulative reliability
        // telemetry.
        let record = self.records.last().expect("record just pushed");
        if let Some(h) = &record.hetero {
            self.total_dropouts += h.dropouts;
            self.total_stragglers += h.stragglers;
            self.cum_sim_time_s += h.sim_time_s;
            self.staleness_sum += h.staleness.iter().sum::<usize>();
            self.staleness_count += h.staleness.len();
        }
        let signals = RoundSignals {
            record,
            total_dropouts: self.total_dropouts,
            total_stragglers: self.total_stragglers,
            sim_time_s: self.cum_sim_time_s,
            mean_staleness: if self.staleness_count == 0 {
                0.0
            } else {
                self.staleness_sum as f64 / self.staleness_count as f64
            },
            in_flight: self.executor.in_flight_clients().len(),
        };
        for obs in &mut self.observers {
            if obs.on_round_end(&signals) == RoundControl::Stop {
                self.stopped = true;
            }
        }
        Ok(Some(record))
    }

    /// Drive the remaining rounds to completion and return the history.
    ///
    /// # Errors
    /// Propagates the first [`FlError`] from [`Session::step`] — and,
    /// having consumed the session, drops the rounds completed before the
    /// failure. Only a misbehaving user-provided [`SelectionPolicy`] can
    /// fail mid-run (built-ins are total, and config errors are caught at
    /// [`SessionBuilder::build`]); when driving such a policy and partial
    /// results matter, loop [`Session::step`] yourself and recover the
    /// completed rounds with [`Session::into_history`].
    pub fn run(mut self) -> Result<RunHistory, FlError> {
        while self.step()?.is_some() {}
        Ok(self.into_history())
    }

    /// Finish the session, consuming it into its [`RunHistory`] (what
    /// [`Session::run`] returns; use directly when driving via
    /// [`Session::step`]).
    pub fn into_history(self) -> RunHistory {
        RunHistory {
            method: self.method,
            dataset: self.dataset_name,
            partition: self.partition.method().code().to_string(),
            n_clients: self.n_clients,
            participants: self.cfg.participants,
            seed: self.cfg.seed,
            records: self.records,
        }
    }
}

/// Check a policy's sample: exactly `k` distinct ids in `[0, n)`.
fn validate_selection(
    selected: &[usize],
    n_clients: usize,
    participants: usize,
    round: usize,
) -> Result<(), FlError> {
    let invalid = |reason: String| FlError::InvalidSelection { round, reason };
    if selected.len() != participants {
        return Err(invalid(format!(
            "expected {participants} clients, got {}",
            selected.len()
        )));
    }
    // Hash set, not a dense `vec![false; n_clients]`: validation stays
    // O(K) in time and memory even over a million-client fleet.
    let mut seen = std::collections::HashSet::with_capacity(selected.len());
    for &c in selected {
        if c >= n_clients {
            return Err(invalid(format!(
                "client id {c} out of range (N = {n_clients})"
            )));
        }
        if !seen.insert(c) {
            return Err(invalid(format!("client id {c} selected twice")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::HeteroConfig;
    use crate::strategy::FedAvg;
    use feddrl_data::partition::PartitionMethod;
    use feddrl_data::synth::SynthSpec;
    use feddrl_sim::device::FleetConfig;

    fn quick_setup() -> (ModelSpec, Dataset, Dataset, Partition) {
        let (train, test) = SynthSpec {
            train_size: 800,
            test_size: 200,
            ..SynthSpec::mnist_like()
        }
        .generate(5);
        let partition = PartitionMethod::Iid
            .partition(&train, 6, &mut Rng64::new(9))
            .unwrap();
        let spec = ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden: vec![16],
            out_dim: train.num_classes(),
        };
        (spec, train, test, partition)
    }

    fn quick_builder<'a>(
        spec: &'a ModelSpec,
        train: &'a Dataset,
        test: &'a Dataset,
        partition: &'a Partition,
        strategy: &'a mut dyn Strategy,
    ) -> SessionBuilder<'a> {
        SessionBuilder::new(spec, train, test, partition, strategy)
            .rounds(2)
            .participants(4)
            .local(crate::client::LocalTrainConfig {
                epochs: 1,
                batch_size: 16,
                lr: 0.05,
                ..Default::default()
            })
            .eval_batch(64)
            .seed(13)
    }

    #[test]
    fn build_rejects_degenerate_configs_with_typed_errors() {
        let (spec, train, test, partition) = quick_setup();
        let mut s = FedAvg;
        let err = quick_builder(&spec, &train, &test, &partition, &mut s)
            .participants(0)
            .build()
            .err();
        assert_eq!(err, Some(FlError::ZeroParticipants));

        let mut s = FedAvg;
        let err = quick_builder(&spec, &train, &test, &partition, &mut s)
            .participants(7)
            .build()
            .err();
        assert_eq!(
            err,
            Some(FlError::ParticipantsExceedClients {
                participants: 7,
                n_clients: 6
            })
        );

        let mut s = FedAvg;
        let err = quick_builder(&spec, &train, &test, &partition, &mut s)
            .rounds(0)
            .build()
            .err();
        assert_eq!(err, Some(FlError::ZeroRounds));

        let mut s = FedAvg;
        let err = quick_builder(&spec, &train, &test, &partition, &mut s)
            .executor(ExecutorConfig::Deadline(HeteroConfig {
                deadline_s: Some(0.0),
                ..Default::default()
            }))
            .build()
            .err();
        assert_eq!(err, Some(FlError::InvalidDeadline { deadline_s: 0.0 }));

        let mut s = FedAvg;
        let err = quick_builder(&spec, &train, &test, &partition, &mut s)
            .executor(ExecutorConfig::Deadline(HeteroConfig {
                fleet: FleetConfig {
                    dropout: 1.0,
                    ..Default::default()
                },
                ..Default::default()
            }))
            .build()
            .err();
        assert!(matches!(err, Some(FlError::InvalidFleet { .. })));

        // A degenerate reliability model gets its own typed error — for
        // both the correlation strength and the rate-certainty bound, and
        // through the buffered executor's validation path too.
        use feddrl_sim::device::{DropoutCorrelation, ReliabilityConfig};
        let mut s = FedAvg;
        let err = quick_builder(&spec, &train, &test, &partition, &mut s)
            .executor(ExecutorConfig::Deadline(HeteroConfig {
                fleet: FleetConfig {
                    dropout: 0.1,
                    reliability: ReliabilityConfig {
                        dropout_skew: 2.0,
                        correlation: DropoutCorrelation::SpeedCorrelated { strength: 1.5 },
                    },
                    ..Default::default()
                },
                ..Default::default()
            }))
            .build()
            .err();
        assert!(matches!(err, Some(FlError::InvalidReliability { .. })));

        let mut s = FedAvg;
        let err = quick_builder(&spec, &train, &test, &partition, &mut s)
            .executor(ExecutorConfig::Buffered(crate::executor::BufferedConfig {
                fleet: FleetConfig {
                    dropout: 0.5,
                    reliability: ReliabilityConfig {
                        dropout_skew: 3.0,
                        correlation: DropoutCorrelation::Independent,
                    },
                    ..Default::default()
                },
                buffer_size: 2,
                ..Default::default()
            }))
            .build()
            .err();
        assert!(matches!(err, Some(FlError::InvalidReliability { .. })));
    }

    #[test]
    fn dataset_name_is_recorded() {
        let (spec, train, test, partition) = quick_setup();
        let mut s = FedAvg;
        let history = quick_builder(&spec, &train, &test, &partition, &mut s)
            .dataset_name("mnist-like")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(history.dataset, "mnist-like");
        assert_eq!(history.records.len(), 2);
    }

    #[test]
    fn session_tracks_participation_counts() {
        let (spec, train, test, partition) = quick_setup();
        struct Probe {
            seen_participation: Vec<usize>,
        }
        impl SelectionPolicy for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut Rng64) -> Vec<usize> {
                self.seen_participation = ctx.participation.to_vec();
                rng.sample_indices(ctx.n_clients, ctx.participants)
            }
        }
        let mut s = FedAvg;
        let mut session = quick_builder(&spec, &train, &test, &partition, &mut s)
            .participants(6)
            .selection_policy(Box::new(Probe {
                seen_participation: Vec::new(),
            }))
            .build()
            .unwrap();
        let _ = session.step().unwrap();
        let _ = session.step().unwrap();
        // Full participation (K = N = 6): after round 0 everyone has been
        // selected once, which is what the policy must observe in round 1.
        assert_eq!(session.rounds_completed(), 2);
        assert!(session.is_finished());
        assert_eq!(session.participation, vec![2; 6]);
    }

    #[test]
    fn early_stop_observer_truncates_the_run() {
        let (spec, train, test, partition) = quick_setup();
        let mut s = FedAvg;
        let history = quick_builder(&spec, &train, &test, &partition, &mut s)
            .rounds(10)
            .observer(Box::new(EarlyStop {
                target_accuracy: 0.0, // any accuracy satisfies it
            }))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(history.records.len(), 1, "EarlyStop failed to stop round 0");
    }

    #[test]
    fn misbehaving_policy_surfaces_invalid_selection() {
        let (spec, train, test, partition) = quick_setup();
        struct Dup;
        impl SelectionPolicy for Dup {
            fn name(&self) -> &'static str {
                "dup"
            }
            fn select(&mut self, ctx: &SelectionContext<'_>, _rng: &mut Rng64) -> Vec<usize> {
                vec![0; ctx.participants]
            }
        }
        let mut s = FedAvg;
        let err = quick_builder(&spec, &train, &test, &partition, &mut s)
            .selection_policy(Box::new(Dup))
            .build()
            .unwrap()
            .run()
            .err();
        assert!(matches!(
            err,
            Some(FlError::InvalidSelection { round: 0, .. })
        ));
    }
}
