//! Typed errors for federated orchestration.
//!
//! [`SessionBuilder::build`](crate::session::SessionBuilder::build) turns
//! every configuration mistake the old `run_federated` free function used
//! to panic on — `K > N`, zero rounds or participants, a degenerate
//! deadline, fleet, aggregation buffer or staleness discount — into an
//! [`FlError`] the caller can match on
//! *before* any training compute is spent. The compatibility wrapper
//! [`run_federated`](crate::server::run_federated) converts them back into
//! panics with the historical messages, so existing `should_panic` tests
//! and scripts keep their behavior.

use std::fmt;

/// Everything that can go wrong while configuring or driving a federated
/// [`Session`](crate::session::Session).
#[derive(Debug, Clone, PartialEq)]
pub enum FlError {
    /// `rounds == 0`: the run would record nothing.
    ZeroRounds,
    /// `participants == 0`: no client could ever be sampled.
    ZeroParticipants,
    /// `participants > n_clients`: sampling without replacement is
    /// impossible.
    ParticipantsExceedClients {
        /// Requested participants per round `K`.
        participants: usize,
        /// Clients available in the partition `N`.
        n_clients: usize,
    },
    /// A deadline-bounded executor was configured with a non-positive or
    /// non-finite round deadline.
    InvalidDeadline {
        /// The rejected deadline in simulated seconds.
        deadline_s: f64,
    },
    /// The device-fleet configuration is degenerate (non-positive compute
    /// or bandwidth, skew below 1, negative latency, or certain dropout).
    InvalidFleet {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The fleet's per-device reliability model is degenerate: a dropout
    /// spread below 1, a speed-correlation strength outside `[0, 1]`, or
    /// a `dropout * dropout_skew` product that would push some device's
    /// rate to a certainty.
    InvalidReliability {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The fleet-dynamics configuration is degenerate: a non-positive or
    /// non-finite diurnal period or churn gap, a modulation amplitude
    /// outside `[0, 1)`, a diurnal peak that would push some device's
    /// effective dropout rate to a certainty, or a structured-dropout
    /// block with an empty ratio grid.
    InvalidDynamics {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A buffered executor was configured with `buffer_size == 0`:
    /// aggregation would never fire.
    ZeroBuffer,
    /// A buffered executor's `buffer_size` exceeds the participants
    /// sampled per round: the buffer could starve the opening rounds.
    BufferExceedsParticipants {
        /// Requested aggregation buffer size `m`.
        buffer_size: usize,
        /// Participants dispatched per round `K`.
        participants: usize,
    },
    /// A staleness discount with invalid parameters (e.g. a non-finite or
    /// negative polynomial exponent).
    InvalidDiscount {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A buffered executor's server mixing rate is outside `(0, 1]`.
    InvalidServerMix {
        /// The rejected mixing rate `η`.
        server_mix: f64,
    },
    /// A server optimizer with invalid hyper-parameters: a non-positive
    /// or non-finite learning rate or adaptivity floor `τ`, or a moment
    /// decay `β` outside `[0, 1)`.
    InvalidServerOpt {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A [`SelectionPolicy`](crate::selection::SelectionPolicy) returned an
    /// invalid sample: wrong cardinality, duplicate ids, or ids outside
    /// `[0, N)`. Only user-defined policies can trigger this — the
    /// built-ins are total over valid contexts.
    InvalidSelection {
        /// Round in which the policy misbehaved.
        round: usize,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A socket-level I/O failure in the networked runtime (bind, accept,
    /// read or write on a client connection). Carries the `io::ErrorKind`
    /// name plus context rather than the `std::io::Error` itself, which is
    /// neither `Clone` nor `PartialEq`.
    Io {
        /// Human-readable description: the failing operation and the
        /// underlying `io::ErrorKind`.
        reason: String,
    },
    /// A wire-protocol violation in the networked runtime: bad frame
    /// magic, an unsupported protocol version, an unknown message kind, a
    /// truncated or oversized frame, or a malformed payload.
    Protocol {
        /// Human-readable description of the violated rule.
        reason: String,
    },
    /// A networked-runtime builder (`NetServerBuilder`/`NetClientBuilder`)
    /// was given a degenerate configuration: an empty address, a
    /// non-positive TTL or heartbeat period, or a delta-publish snapshot
    /// ring too small to hold a base version.
    InvalidNetConfig {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The first three messages reproduce the historical panic strings
        // of `run_federated` verbatim: downstream `should_panic(expected)`
        // tests match on substrings of them.
        match self {
            FlError::ZeroRounds => write!(f, "rounds must be positive"),
            FlError::ZeroParticipants => write!(f, "participants must be positive"),
            FlError::ParticipantsExceedClients {
                participants,
                n_clients,
            } => write!(f, "K = {participants} exceeds N = {n_clients}"),
            FlError::InvalidDeadline { deadline_s } => write!(
                f,
                "round deadline must be positive and finite, got {deadline_s}"
            ),
            FlError::InvalidFleet { reason } => write!(f, "invalid fleet config: {reason}"),
            FlError::InvalidReliability { reason } => {
                write!(f, "invalid reliability model: {reason}")
            }
            FlError::InvalidDynamics { reason } => {
                write!(f, "invalid fleet dynamics: {reason}")
            }
            FlError::ZeroBuffer => write!(f, "aggregation buffer must be positive"),
            FlError::BufferExceedsParticipants {
                buffer_size,
                participants,
            } => write!(
                f,
                "aggregation buffer m = {buffer_size} exceeds participants K = {participants}"
            ),
            FlError::InvalidDiscount { reason } => {
                write!(f, "invalid staleness discount: {reason}")
            }
            FlError::InvalidServerMix { server_mix } => {
                write!(f, "server mixing rate must be in (0, 1], got {server_mix}")
            }
            FlError::InvalidServerOpt { reason } => {
                write!(f, "invalid server optimizer: {reason}")
            }
            FlError::InvalidSelection { round, reason } => write!(
                f,
                "round {round}: selection policy returned an invalid sample: {reason}"
            ),
            FlError::Io { reason } => write!(f, "network i/o error: {reason}"),
            FlError::Protocol { reason } => write!(f, "wire protocol violation: {reason}"),
            FlError::InvalidNetConfig { reason } => {
                write!(f, "invalid network config: {reason}")
            }
        }
    }
}

impl std::error::Error for FlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_preserve_historical_panic_strings() {
        assert_eq!(FlError::ZeroRounds.to_string(), "rounds must be positive");
        assert_eq!(
            FlError::ZeroParticipants.to_string(),
            "participants must be positive"
        );
        let e = FlError::ParticipantsExceedClients {
            participants: 7,
            n_clients: 6,
        };
        assert!(e.to_string().contains("exceeds N"));
    }

    #[test]
    fn buffered_messages_name_the_offending_knob() {
        assert_eq!(
            FlError::ZeroBuffer.to_string(),
            "aggregation buffer must be positive"
        );
        let e = FlError::BufferExceedsParticipants {
            buffer_size: 8,
            participants: 5,
        };
        assert!(e.to_string().contains("m = 8 exceeds participants K = 5"));
        let e = FlError::InvalidDiscount {
            reason: "bad alpha".into(),
        };
        assert!(e.to_string().contains("staleness discount: bad alpha"));
        let e = FlError::InvalidReliability {
            reason: "strength must be in [0, 1], got 2".into(),
        };
        assert!(e.to_string().contains("reliability model: strength"));
        let e = FlError::InvalidDynamics {
            reason: "diurnal period must be positive".into(),
        };
        assert!(e.to_string().contains("fleet dynamics: diurnal period"));
        let e = FlError::InvalidServerOpt {
            reason: "lr must be positive and finite, got 0".into(),
        };
        assert!(e.to_string().contains("server optimizer: lr"));
    }

    #[test]
    fn network_messages_name_their_surface() {
        let e = FlError::Io {
            reason: "accept on 127.0.0.1:0: ConnectionReset".into(),
        };
        assert!(e.to_string().contains("network i/o error: accept"));
        let e = FlError::Protocol {
            reason: "bad frame magic 0xBEEF".into(),
        };
        assert!(e.to_string().contains("wire protocol violation: bad frame"));
        let e = FlError::InvalidNetConfig {
            reason: "server address must not be empty".into(),
        };
        assert!(e.to_string().contains("invalid network config: server"));
    }

    #[test]
    fn is_an_error_type() {
        let e: Box<dyn std::error::Error> = Box::new(FlError::ZeroRounds);
        assert!(e.to_string().contains("rounds"));
    }
}
