//! Evaluation metrics: test accuracy, inference losses, robustness and
//! convergence statistics (paper §4.2.2, Figure 6 and Figure 10).

use feddrl_data::dataset::Dataset;
use feddrl_nn::loss::{accuracy, cross_entropy_loss_only};
use feddrl_nn::model::Sequential;
use serde::{Deserialize, Serialize};

/// Mean cross-entropy of `model` on the rows of `dataset` selected by
/// `indices`, evaluated in inference mode in chunks of `batch`.
pub fn inference_loss(
    model: &mut Sequential,
    dataset: &Dataset,
    indices: &[usize],
    batch: usize,
) -> f32 {
    assert!(!indices.is_empty(), "inference_loss on empty index set");
    let mut total = 0.0f64;
    for chunk in indices.chunks(batch.max(1)) {
        let (x, y) = dataset.gather(chunk);
        let logits = model.forward(&x, false);
        total += cross_entropy_loss_only(&logits, &y) as f64 * chunk.len() as f64;
    }
    (total / indices.len() as f64) as f32
}

/// Top-1 accuracy and mean loss of `model` over the whole `dataset`.
pub fn evaluate(model: &mut Sequential, dataset: &Dataset, batch: usize) -> (f32, f32) {
    assert!(!dataset.is_empty(), "evaluate on empty dataset");
    let mut loss = 0.0f64;
    let mut correct = 0.0f64;
    let n = dataset.len();
    let indices: Vec<usize> = (0..n).collect();
    for chunk in indices.chunks(batch.max(1)) {
        let (x, y) = dataset.gather(chunk);
        let logits = model.forward(&x, false);
        loss += cross_entropy_loss_only(&logits, &y) as f64 * chunk.len() as f64;
        correct += accuracy(&logits, &y) as f64 * chunk.len() as f64;
    }
    ((correct / n as f64) as f32, (loss / n as f64) as f32)
}

/// Mean and population variance of a slice (used for Figure 6's per-client
/// inference-loss statistics).
pub fn mean_var(xs: &[f32]) -> (f32, f32) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
    let var = xs
        .iter()
        .map(|&x| (x as f64 - mean) * (x as f64 - mean))
        .sum::<f64>()
        / n;
    (mean as f32, var as f32)
}

/// Accuracy trajectory summary of one federated run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConvergenceStats {
    /// Best test accuracy over all rounds.
    pub best_accuracy: f32,
    /// Round at which the best accuracy was first reached.
    pub best_round: usize,
}

/// First round whose accuracy reaches `target`, if any (Figure 10's
/// convergence-rate metric).
pub fn rounds_to_target(accuracies: &[f32], target: f32) -> Option<usize> {
    accuracies.iter().position(|&a| a >= target)
}

/// Best accuracy and the round it was first achieved.
pub fn best_accuracy(accuracies: &[f32]) -> ConvergenceStats {
    let mut best = ConvergenceStats::default();
    for (round, &acc) in accuracies.iter().enumerate() {
        if acc > best.best_accuracy {
            best.best_accuracy = acc;
            best.best_round = round;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddrl_data::synth::SynthSpec;
    use feddrl_nn::zoo::ModelSpec;

    #[test]
    fn evaluate_untrained_model_is_chance_level() {
        let (_, test) = SynthSpec::mnist_like().generate(2);
        let spec = ModelSpec::Mlp {
            in_dim: test.feature_dim(),
            hidden: vec![16],
            out_dim: test.num_classes(),
        };
        let mut model = spec.build(1);
        let (acc, loss) = evaluate(&mut model, &test, 128);
        assert!(acc < 0.35, "untrained accuracy suspiciously high: {acc}");
        // Untrained CE should be at least chance level ln(10) ≈ 2.30 and
        // not absurdly large (He-init logits inflate it somewhat).
        assert!(
            (1.5..8.0).contains(&loss),
            "untrained loss {loss} outside plausible range"
        );
    }

    #[test]
    fn inference_loss_batch_size_invariant() {
        let (train, _) = SynthSpec::mnist_like().generate(3);
        let spec = ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden: vec![16],
            out_dim: train.num_classes(),
        };
        let mut model = spec.build(2);
        let indices: Vec<usize> = (0..333).collect();
        let a = inference_loss(&mut model, &train, &indices, 7);
        let b = inference_loss(&mut model, &train, &indices, 333);
        assert!(
            (a - b).abs() < 1e-4,
            "batching changed the loss: {a} vs {b}"
        );
    }

    #[test]
    fn mean_var_known_values() {
        let (m, v) = mean_var(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-6);
        assert!((v - 1.25).abs() < 1e-6);
        assert_eq!(mean_var(&[]), (0.0, 0.0));
    }

    #[test]
    fn rounds_to_target_finds_first_crossing() {
        let acc = [0.1, 0.3, 0.5, 0.4, 0.6];
        assert_eq!(rounds_to_target(&acc, 0.5), Some(2));
        assert_eq!(rounds_to_target(&acc, 0.65), None);
        assert_eq!(rounds_to_target(&acc, 0.05), Some(0));
    }

    #[test]
    fn best_accuracy_tracks_first_peak() {
        let acc = [0.1, 0.8, 0.8, 0.2];
        let stats = best_accuracy(&acc);
        assert_eq!(stats.best_accuracy, 0.8);
        assert_eq!(stats.best_round, 1);
    }

    #[test]
    #[should_panic(expected = "empty index set")]
    fn inference_loss_rejects_empty() {
        let (train, _) = SynthSpec::mnist_like().generate(4);
        let spec = ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden: vec![8],
            out_dim: train.num_classes(),
        };
        let mut model = spec.build(3);
        let _ = inference_loss(&mut model, &train, &[], 32);
    }
}
