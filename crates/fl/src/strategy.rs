//! Server-side aggregation strategies.
//!
//! A [`Strategy`] maps the clients' round reports to *impact factors* — the
//! weights `α` of the convex combination `w^{t+1} = Σ_k α_k · w_k^t`
//! (paper Eq. 4). The server normalizes and applies the combination itself,
//! which cleanly separates "deciding α" (3 ms for the DRL policy in Fig. 9)
//! from "averaging weights" (model-size dependent).
//!
//! Built-in strategies: [`FedAvg`] (α ∝ n_k, paper Eq. 1), [`FedProx`]
//! (FedAvg aggregation + proximal local solver, \[12\]) and [`Uniform`]
//! (α = 1/K ablation). FedDRL itself lives in the `feddrl` crate and plugs
//! in through this same trait.

use crate::client::{ClientSummary, ClientUpdate};

/// Everything a strategy may inspect about the current round beyond the
/// scalar summaries: the global model broadcast at round start and the
/// full client updates (including weight vectors), enabling
/// gradient-geometry strategies like [`FedAdp`](crate::baselines::FedAdp).
pub struct RoundContext<'a> {
    /// Communication round (0-based).
    pub round: usize,
    /// Flat global weights broadcast at the start of this round.
    pub global_weights: &'a [f32],
    /// Full client reports, aligned with the summaries.
    pub updates: &'a [ClientUpdate],
}

/// A pluggable impact-factor policy.
pub trait Strategy: Send {
    /// Display name used in tables and history files.
    fn name(&self) -> &'static str;

    /// Compute one impact factor per entry of `summaries` for round
    /// `round`. The returned vector needs to be non-negative and finite;
    /// the server normalizes it onto the simplex.
    fn impact_factors(&mut self, round: usize, summaries: &[ClientSummary]) -> Vec<f32>;

    /// Context-aware variant the server actually invokes. The default
    /// delegates to [`Strategy::impact_factors`]; strategies that need the
    /// weight vectors or the broadcast global model (e.g. gradient-angle
    /// weighting) override this instead.
    fn impact_factors_ctx(&mut self, ctx: &RoundContext<'_>) -> Vec<f32> {
        let summaries: Vec<ClientSummary> = ctx.updates.iter().map(|u| u.summary()).collect();
        self.impact_factors(ctx.round, &summaries)
    }

    /// Proximal coefficient the local solver should use (`Some` only for
    /// FedProx-style strategies).
    fn proximal_mu(&self) -> Option<f32> {
        None
    }
}

/// FedAvg: impact proportional to the client's sample count (Eq. 1).
#[derive(Debug, Clone, Default)]
pub struct FedAvg;

impl Strategy for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn impact_factors(&mut self, _round: usize, summaries: &[ClientSummary]) -> Vec<f32> {
        summaries.iter().map(|s| s.n_samples as f32).collect()
    }
}

/// FedProx: FedAvg's aggregation plus the proximal term `(μ/2)‖w−w_t‖²`
/// in the local objective (paper baseline, μ = 0.01).
#[derive(Debug, Clone)]
pub struct FedProx {
    mu: f32,
}

impl FedProx {
    /// Create FedProx with proximal coefficient `μ`.
    pub fn new(mu: f32) -> Self {
        assert!(mu >= 0.0, "FedProx mu must be non-negative, got {mu}");
        Self { mu }
    }
}

impl Default for FedProx {
    /// Paper setting μ = 0.01.
    fn default() -> Self {
        Self::new(0.01)
    }
}

impl Strategy for FedProx {
    fn name(&self) -> &'static str {
        "FedProx"
    }

    fn impact_factors(&mut self, _round: usize, summaries: &[ClientSummary]) -> Vec<f32> {
        summaries.iter().map(|s| s.n_samples as f32).collect()
    }

    fn proximal_mu(&self) -> Option<f32> {
        Some(self.mu)
    }
}

/// Uniform weighting (α = 1/K); ablation reference.
#[derive(Debug, Clone, Default)]
pub struct Uniform;

impl Strategy for Uniform {
    fn name(&self) -> &'static str {
        "Uniform"
    }

    fn impact_factors(&mut self, _round: usize, summaries: &[ClientSummary]) -> Vec<f32> {
        vec![1.0; summaries.len()]
    }
}

/// Normalize raw factors onto the probability simplex.
///
/// # Panics
/// Panics if any factor is negative/non-finite or the sum is zero — a
/// strategy returning such factors is a bug worth failing loudly on.
pub fn normalize_factors(raw: &[f32]) -> Vec<f32> {
    assert!(!raw.is_empty(), "no impact factors to normalize");
    let mut sum = 0.0f64;
    for (i, &f) in raw.iter().enumerate() {
        assert!(f.is_finite() && f >= 0.0, "impact factor {i} invalid: {f}");
        sum += f as f64;
    }
    assert!(sum > 0.0, "impact factors sum to zero");
    raw.iter().map(|&f| (f as f64 / sum) as f32).collect()
}

/// Weighted average of flat client weight vectors: `Σ_k α_k w_k`
/// (paper Eq. 4). `alphas` must already be normalized.
///
/// # Panics
/// Panics on length mismatches.
pub fn weighted_average(weights: &[&[f32]], alphas: &[f32]) -> Vec<f32> {
    assert_eq!(
        weights.len(),
        alphas.len(),
        "weights/alphas cardinality mismatch"
    );
    assert!(!weights.is_empty(), "nothing to aggregate");
    let dim = weights[0].len();
    let mut out = vec![0.0f32; dim];
    for (w, &a) in weights.iter().zip(alphas.iter()) {
        assert_eq!(w.len(), dim, "client weight vector length mismatch");
        if a == 0.0 {
            continue;
        }
        for (o, &v) in out.iter_mut().zip(w.iter()) {
            *o += a * v;
        }
    }
    out
}

/// Mask-aware weighted average for heterogeneous sub-model updates
/// (adaptive structured dropout, arXiv:2507.10430).
///
/// A masked client trains only the parameters its
/// [`StructuredMask`](feddrl_nn::mask::StructuredMask) keeps, pinning the
/// rest at zero — averaging those zeros in as if they were trained values
/// would drag every masked coordinate toward the origin. Instead each
/// position `p` is averaged only over the clients that actually trained
/// it, renormalizing the impact mass per position:
///
/// `w[p] = Σ_k α_k · keeps_k(p) · w_k[p]  /  Σ_k α_k · keeps_k(p)`
///
/// Positions no participating client trained (`Σ_k α_k · keeps_k(p) = 0`)
/// keep the broadcast global value `global[p]` — untouched, not zeroed.
/// When every update is full (no mask, or a mask keeping everything) this
/// reduces exactly to [`weighted_average`]; the session only routes
/// through here when some update carries a partial mask, so dynamics-free
/// runs never pay the per-position bookkeeping.
///
/// # Panics
/// Panics on length mismatches between `global`, the update weight
/// vectors, their masks, and `alphas`.
pub fn masked_weighted_average(
    global: &[f32],
    updates: &[ClientUpdate],
    alphas: &[f32],
) -> Vec<f32> {
    assert_eq!(
        updates.len(),
        alphas.len(),
        "updates/alphas cardinality mismatch"
    );
    assert!(!updates.is_empty(), "nothing to aggregate");
    let dim = global.len();
    let mut num = vec![0.0f32; dim];
    let mut mass = vec![0.0f32; dim];
    for (u, &a) in updates.iter().zip(alphas.iter()) {
        assert_eq!(u.weights.len(), dim, "client weight vector length mismatch");
        if a == 0.0 {
            continue;
        }
        match &u.mask {
            None => {
                for p in 0..dim {
                    num[p] += a * u.weights[p];
                    mass[p] += a;
                }
            }
            Some(m) => {
                assert_eq!(m.len(), dim, "client mask length mismatch");
                for p in 0..dim {
                    if m.keeps(p) {
                        num[p] += a * u.weights[p];
                        mass[p] += a;
                    }
                }
            }
        }
    }
    (0..dim)
        .map(|p| {
            if mass[p] > 0.0 {
                num[p] / mass[p]
            } else {
                global[p]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summaries(ns: &[usize]) -> Vec<ClientSummary> {
        ns.iter()
            .enumerate()
            .map(|(i, &n)| ClientSummary {
                client_id: i,
                n_samples: n,
                loss_before: 1.0,
                loss_after: 0.5,
            })
            .collect()
    }

    #[test]
    fn fedavg_weights_by_sample_count() {
        let mut s = FedAvg;
        let raw = s.impact_factors(0, &summaries(&[100, 300]));
        let alpha = normalize_factors(&raw);
        assert!((alpha[0] - 0.25).abs() < 1e-6);
        assert!((alpha[1] - 0.75).abs() < 1e-6);
        assert!(s.proximal_mu().is_none());
    }

    #[test]
    fn fedprox_same_aggregation_with_proximal() {
        let mut p = FedProx::default();
        let mut a = FedAvg;
        let sums = summaries(&[10, 20, 30]);
        assert_eq!(p.impact_factors(3, &sums), a.impact_factors(3, &sums));
        assert_eq!(p.proximal_mu(), Some(0.01));
    }

    #[test]
    fn uniform_is_flat() {
        let mut u = Uniform;
        let alpha = normalize_factors(&u.impact_factors(0, &summaries(&[5, 500])));
        assert!((alpha[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalize_puts_on_simplex() {
        let alpha = normalize_factors(&[2.0, 2.0, 4.0]);
        assert!((alpha.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(alpha, vec![0.25, 0.25, 0.5]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn normalize_rejects_nan() {
        let _ = normalize_factors(&[1.0, f32::NAN]);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn normalize_rejects_all_zero() {
        let _ = normalize_factors(&[0.0, 0.0]);
    }

    #[test]
    fn weighted_average_identity_on_identical_inputs() {
        let w = vec![1.0f32, -2.0, 3.0];
        let avg = weighted_average(&[&w, &w, &w], &[0.2, 0.5, 0.3]);
        for (a, b) in avg.iter().zip(w.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_average_convex_combination() {
        let a = vec![0.0f32, 0.0];
        let b = vec![1.0f32, 2.0];
        let avg = weighted_average(&[&a, &b], &[0.75, 0.25]);
        assert_eq!(avg, vec![0.25, 0.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_average_rejects_ragged_inputs() {
        let a = vec![0.0f32, 0.0];
        let b = vec![1.0f32];
        let _ = weighted_average(&[&a, &b], &[0.5, 0.5]);
    }

    fn update(id: usize, weights: Vec<f32>, mask: Option<StructuredMask>) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            weights,
            n_samples: 10,
            loss_before: 1.0,
            loss_after: 0.5,
            staleness: 0,
            mask,
        }
    }

    use feddrl_nn::mask::StructuredMask;

    #[test]
    fn masked_average_with_full_masks_matches_weighted_average() {
        let a = update(0, vec![1.0, 2.0, 3.0, 4.0], None);
        let b = update(1, vec![5.0, 6.0, 7.0, 8.0], Some(StructuredMask::full(4)));
        let alphas = [0.25f32, 0.75];
        let global = vec![0.0f32; 4];
        let masked = masked_weighted_average(&global, &[a.clone(), b.clone()], &alphas);
        let plain = weighted_average(&[&a.weights, &b.weights], &alphas);
        // alphas sum to exactly 1.0 in f32, so the per-position mass
        // normalization divides by exactly 1 and the results coincide.
        assert_eq!(masked, plain);
    }

    #[test]
    fn masked_positions_average_only_over_their_trainers() {
        // Client 1 trained only the first two positions; positions 2-3 of
        // its vector are frozen at zero and must not vote.
        let full = update(0, vec![1.0, 1.0, 1.0, 1.0], None);
        let sub = update(
            1,
            vec![3.0, 3.0, 0.0, 0.0],
            Some(StructuredMask::from_keep(vec![true, true, false, false])),
        );
        let global = vec![9.0f32; 4];
        let avg = masked_weighted_average(&global, &[full, sub], &[0.5, 0.5]);
        // Positions 0-1: both vote, (0.5*1 + 0.5*3) / (0.5 + 0.5) = 2.
        // Positions 2-3: only the full client votes, 0.5*1 / 0.5 = 1 — the
        // sub-model's frozen zeros never drag the average toward zero.
        assert_eq!(avg, vec![2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn positions_nobody_trained_keep_the_global_value() {
        let mask = StructuredMask::from_keep(vec![true, false, false]);
        let a = update(0, vec![4.0, 0.0, 0.0], Some(mask.clone()));
        let b = update(1, vec![8.0, 0.0, 0.0], Some(mask));
        let global = vec![-1.0f32, -2.0, -3.0];
        let avg = masked_weighted_average(&global, &[a, b], &[0.5, 0.5]);
        assert_eq!(avg, vec![6.0, -2.0, -3.0]);
    }

    #[test]
    fn masked_average_skips_zero_alpha_updates() {
        // A zero-impact masked update contributes neither value nor mass:
        // its exclusive positions fall back to the global weights.
        let a = update(0, vec![1.0, 1.0], None);
        let b = update(
            1,
            vec![7.0, 0.0],
            Some(StructuredMask::from_keep(vec![true, false])),
        );
        let avg = masked_weighted_average(&[5.0, 5.0], &[a, b], &[0.0, 1.0]);
        assert_eq!(avg, vec![7.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn masked_average_rejects_ragged_masks() {
        let a = update(
            0,
            vec![1.0, 2.0],
            Some(StructuredMask::from_keep(vec![true])),
        );
        let _ = masked_weighted_average(&[0.0, 0.0], &[a], &[1.0]);
    }
}
