//! Server-side aggregation strategies.
//!
//! A [`Strategy`] maps the clients' round reports to *impact factors* — the
//! weights `α` of the convex combination `w^{t+1} = Σ_k α_k · w_k^t`
//! (paper Eq. 4). The server normalizes and applies the combination itself,
//! which cleanly separates "deciding α" (3 ms for the DRL policy in Fig. 9)
//! from "averaging weights" (model-size dependent).
//!
//! Built-in strategies: [`FedAvg`] (α ∝ n_k, paper Eq. 1), [`FedProx`]
//! (FedAvg aggregation + proximal local solver, \[12\]) and [`Uniform`]
//! (α = 1/K ablation). FedDRL itself lives in the `feddrl` crate and plugs
//! in through this same trait.

use crate::client::{ClientSummary, ClientUpdate};

/// Everything a strategy may inspect about the current round beyond the
/// scalar summaries: the global model broadcast at round start and the
/// full client updates (including weight vectors), enabling
/// gradient-geometry strategies like [`FedAdp`](crate::baselines::FedAdp).
pub struct RoundContext<'a> {
    /// Communication round (0-based).
    pub round: usize,
    /// Flat global weights broadcast at the start of this round.
    pub global_weights: &'a [f32],
    /// Full client reports, aligned with the summaries.
    pub updates: &'a [ClientUpdate],
}

/// A pluggable impact-factor policy.
pub trait Strategy: Send {
    /// Display name used in tables and history files.
    fn name(&self) -> &'static str;

    /// Compute one impact factor per entry of `summaries` for round
    /// `round`. The returned vector needs to be non-negative and finite;
    /// the server normalizes it onto the simplex.
    fn impact_factors(&mut self, round: usize, summaries: &[ClientSummary]) -> Vec<f32>;

    /// Context-aware variant the server actually invokes. The default
    /// delegates to [`Strategy::impact_factors`]; strategies that need the
    /// weight vectors or the broadcast global model (e.g. gradient-angle
    /// weighting) override this instead.
    fn impact_factors_ctx(&mut self, ctx: &RoundContext<'_>) -> Vec<f32> {
        let summaries: Vec<ClientSummary> = ctx.updates.iter().map(|u| u.summary()).collect();
        self.impact_factors(ctx.round, &summaries)
    }

    /// Proximal coefficient the local solver should use (`Some` only for
    /// FedProx-style strategies).
    fn proximal_mu(&self) -> Option<f32> {
        None
    }
}

/// FedAvg: impact proportional to the client's sample count (Eq. 1).
#[derive(Debug, Clone, Default)]
pub struct FedAvg;

impl Strategy for FedAvg {
    fn name(&self) -> &'static str {
        "FedAvg"
    }

    fn impact_factors(&mut self, _round: usize, summaries: &[ClientSummary]) -> Vec<f32> {
        summaries.iter().map(|s| s.n_samples as f32).collect()
    }
}

/// FedProx: FedAvg's aggregation plus the proximal term `(μ/2)‖w−w_t‖²`
/// in the local objective (paper baseline, μ = 0.01).
#[derive(Debug, Clone)]
pub struct FedProx {
    mu: f32,
}

impl FedProx {
    /// Create FedProx with proximal coefficient `μ`.
    pub fn new(mu: f32) -> Self {
        assert!(mu >= 0.0, "FedProx mu must be non-negative, got {mu}");
        Self { mu }
    }
}

impl Default for FedProx {
    /// Paper setting μ = 0.01.
    fn default() -> Self {
        Self::new(0.01)
    }
}

impl Strategy for FedProx {
    fn name(&self) -> &'static str {
        "FedProx"
    }

    fn impact_factors(&mut self, _round: usize, summaries: &[ClientSummary]) -> Vec<f32> {
        summaries.iter().map(|s| s.n_samples as f32).collect()
    }

    fn proximal_mu(&self) -> Option<f32> {
        Some(self.mu)
    }
}

/// Uniform weighting (α = 1/K); ablation reference.
#[derive(Debug, Clone, Default)]
pub struct Uniform;

impl Strategy for Uniform {
    fn name(&self) -> &'static str {
        "Uniform"
    }

    fn impact_factors(&mut self, _round: usize, summaries: &[ClientSummary]) -> Vec<f32> {
        vec![1.0; summaries.len()]
    }
}

/// Normalize raw factors onto the probability simplex.
///
/// # Panics
/// Panics if any factor is negative/non-finite or the sum is zero — a
/// strategy returning such factors is a bug worth failing loudly on.
pub fn normalize_factors(raw: &[f32]) -> Vec<f32> {
    assert!(!raw.is_empty(), "no impact factors to normalize");
    let mut sum = 0.0f64;
    for (i, &f) in raw.iter().enumerate() {
        assert!(f.is_finite() && f >= 0.0, "impact factor {i} invalid: {f}");
        sum += f as f64;
    }
    assert!(sum > 0.0, "impact factors sum to zero");
    raw.iter().map(|&f| (f as f64 / sum) as f32).collect()
}

/// Weighted average of flat client weight vectors: `Σ_k α_k w_k`
/// (paper Eq. 4). `alphas` must already be normalized.
///
/// # Panics
/// Panics on length mismatches.
pub fn weighted_average(weights: &[&[f32]], alphas: &[f32]) -> Vec<f32> {
    assert_eq!(
        weights.len(),
        alphas.len(),
        "weights/alphas cardinality mismatch"
    );
    assert!(!weights.is_empty(), "nothing to aggregate");
    let dim = weights[0].len();
    let mut out = vec![0.0f32; dim];
    for (w, &a) in weights.iter().zip(alphas.iter()) {
        assert_eq!(w.len(), dim, "client weight vector length mismatch");
        if a == 0.0 {
            continue;
        }
        for (o, &v) in out.iter_mut().zip(w.iter()) {
            *o += a * v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summaries(ns: &[usize]) -> Vec<ClientSummary> {
        ns.iter()
            .enumerate()
            .map(|(i, &n)| ClientSummary {
                client_id: i,
                n_samples: n,
                loss_before: 1.0,
                loss_after: 0.5,
            })
            .collect()
    }

    #[test]
    fn fedavg_weights_by_sample_count() {
        let mut s = FedAvg;
        let raw = s.impact_factors(0, &summaries(&[100, 300]));
        let alpha = normalize_factors(&raw);
        assert!((alpha[0] - 0.25).abs() < 1e-6);
        assert!((alpha[1] - 0.75).abs() < 1e-6);
        assert!(s.proximal_mu().is_none());
    }

    #[test]
    fn fedprox_same_aggregation_with_proximal() {
        let mut p = FedProx::default();
        let mut a = FedAvg;
        let sums = summaries(&[10, 20, 30]);
        assert_eq!(p.impact_factors(3, &sums), a.impact_factors(3, &sums));
        assert_eq!(p.proximal_mu(), Some(0.01));
    }

    #[test]
    fn uniform_is_flat() {
        let mut u = Uniform;
        let alpha = normalize_factors(&u.impact_factors(0, &summaries(&[5, 500])));
        assert!((alpha[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalize_puts_on_simplex() {
        let alpha = normalize_factors(&[2.0, 2.0, 4.0]);
        assert!((alpha.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(alpha, vec![0.25, 0.25, 0.5]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn normalize_rejects_nan() {
        let _ = normalize_factors(&[1.0, f32::NAN]);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn normalize_rejects_all_zero() {
        let _ = normalize_factors(&[0.0, 0.0]);
    }

    #[test]
    fn weighted_average_identity_on_identical_inputs() {
        let w = vec![1.0f32, -2.0, 3.0];
        let avg = weighted_average(&[&w, &w, &w], &[0.2, 0.5, 0.3]);
        for (a, b) in avg.iter().zip(w.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn weighted_average_convex_combination() {
        let a = vec![0.0f32, 0.0];
        let b = vec![1.0f32, 2.0];
        let avg = weighted_average(&[&a, &b], &[0.75, 0.25]);
        assert_eq!(avg, vec![0.25, 0.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_average_rejects_ragged_inputs() {
        let a = vec![0.0f32, 0.0];
        let b = vec![1.0f32];
        let _ = weighted_average(&[&a, &b], &[0.5, 0.5]);
    }
}
