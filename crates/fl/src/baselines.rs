//! Additional adaptive-weighting baselines from the paper's related work
//! (§2.2.2): heuristic impact-factor rules that FedDRL is positioned
//! against. These make the "fixed rule vs learned policy" comparison
//! concrete and are exercised by `exp_baselines`.

use crate::client::ClientSummary;
use crate::strategy::{RoundContext, Strategy};
use std::collections::HashMap;

/// FedAdp-style gradient-angle adaptive weighting (Wu & Wang, IEEE TCCN
/// 2021 — the paper's reference \[25\]).
///
/// Clients whose local update direction aligns with the aggregate update
/// direction get amplified weights; misaligned ("conflicting") clients are
/// damped. The instantaneous angle is smoothed per client across the
/// rounds it participates in, then mapped through a Gompertz function.
pub struct FedAdp {
    /// Gompertz steepness α (reference implementation uses 5).
    alpha: f32,
    /// Per-client smoothed angle and participation count.
    smoothed: HashMap<usize, (f32, usize)>,
}

impl FedAdp {
    /// Create with the given Gompertz steepness.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha > 0.0, "FedAdp alpha must be positive");
        Self {
            alpha,
            smoothed: HashMap::new(),
        }
    }
}

impl Default for FedAdp {
    fn default() -> Self {
        Self::new(5.0)
    }
}

impl Strategy for FedAdp {
    fn name(&self) -> &'static str {
        "FedAdp"
    }

    fn impact_factors(&mut self, _round: usize, summaries: &[ClientSummary]) -> Vec<f32> {
        // Without gradient geometry we cannot do better than FedAvg; the
        // server always calls the ctx variant, this exists for trait
        // completeness.
        summaries.iter().map(|s| s.n_samples as f32).collect()
    }

    fn impact_factors_ctx(&mut self, ctx: &RoundContext<'_>) -> Vec<f32> {
        let dim = ctx.global_weights.len();
        let k = ctx.updates.len();
        // Local update directions Δ_k = w_k − w_global and the
        // sample-weighted aggregate direction.
        let mut agg = vec![0.0f32; dim];
        let total_n: f32 = ctx.updates.iter().map(|u| u.n_samples as f32).sum();
        for u in ctx.updates {
            let frac = u.n_samples as f32 / total_n.max(1.0);
            for ((a, &w), &g) in agg.iter_mut().zip(u.weights.iter()).zip(ctx.global_weights) {
                *a += frac * (w - g);
            }
        }
        let agg_norm = agg.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
        let mut factors = Vec::with_capacity(k);
        for u in ctx.updates {
            let mut dot = 0.0f32;
            let mut norm = 0.0f32;
            for ((&w, &g), &a) in u.weights.iter().zip(ctx.global_weights).zip(agg.iter()) {
                let d = w - g;
                dot += d * a;
                norm += d * d;
            }
            let cos = (dot / (norm.sqrt().max(1e-12) * agg_norm)).clamp(-1.0, 1.0);
            let theta = cos.acos();
            // Per-client running average over participations.
            let entry = self.smoothed.entry(u.client_id).or_insert((theta, 0));
            let t = entry.1 as f32;
            entry.0 = (t / (t + 1.0)) * entry.0 + (1.0 / (t + 1.0)) * theta;
            entry.1 += 1;
            let smooth = entry.0;
            // Gompertz mapping: aligned (small angle) → large weight.
            let alpha = self.alpha;
            let f = alpha * (1.0 - (-((-alpha * (smooth - 1.0)).exp())).exp());
            factors.push(u.n_samples as f32 * f.exp());
        }
        factors
    }
}

/// Loss-proportional weighting in the spirit of q-FFL / FedCav: clients
/// where the global model currently performs worst receive more weight,
/// tempered by the exponent `q` (`q = 0` recovers FedAvg).
#[derive(Debug, Clone)]
pub struct LossProportional {
    q: f32,
}

impl LossProportional {
    /// Create with loss exponent `q ≥ 0`.
    pub fn new(q: f32) -> Self {
        assert!(q >= 0.0, "loss exponent must be non-negative, got {q}");
        Self { q }
    }
}

impl Default for LossProportional {
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl Strategy for LossProportional {
    fn name(&self) -> &'static str {
        "LossProp"
    }

    fn impact_factors(&mut self, _round: usize, summaries: &[ClientSummary]) -> Vec<f32> {
        summaries
            .iter()
            .map(|s| s.n_samples as f32 * s.loss_before.max(1e-6).powf(self.q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientUpdate;
    use crate::strategy::normalize_factors;

    fn update(id: usize, n: usize, weights: Vec<f32>, loss: f32) -> ClientUpdate {
        ClientUpdate {
            client_id: id,
            weights,
            n_samples: n,
            loss_before: loss,
            loss_after: loss * 0.5,
            staleness: 0,
            mask: None,
        }
    }

    #[test]
    fn fedadp_rewards_aligned_clients() {
        let mut adp = FedAdp::default();
        let global = vec![0.0f32; 4];
        // Two clients pull in +x, one pulls the opposite way.
        let updates = vec![
            update(0, 100, vec![1.0, 1.0, 0.0, 0.0], 1.0),
            update(1, 100, vec![0.9, 1.1, 0.0, 0.0], 1.0),
            update(2, 100, vec![-1.0, -1.0, 0.0, 0.0], 1.0),
        ];
        let ctx = RoundContext {
            round: 0,
            global_weights: &global,
            updates: &updates,
        };
        let alpha = normalize_factors(&adp.impact_factors_ctx(&ctx));
        assert!(
            alpha[0] > alpha[2] && alpha[1] > alpha[2],
            "conflicting client not damped: {alpha:?}"
        );
    }

    #[test]
    fn fedadp_smooths_angles_across_rounds() {
        let mut adp = FedAdp::default();
        let global = vec![0.0f32; 2];
        let aligned = vec![
            update(0, 10, vec![1.0, 0.0], 1.0),
            update(1, 10, vec![1.0, 0.1], 1.0),
        ];
        let ctx = RoundContext {
            round: 0,
            global_weights: &global,
            updates: &aligned,
        };
        let _ = adp.impact_factors_ctx(&ctx);
        let first = adp.smoothed[&0];
        let _ = adp.impact_factors_ctx(&RoundContext {
            round: 1,
            global_weights: &global,
            updates: &aligned,
        });
        let second = adp.smoothed[&0];
        assert_eq!(second.1, 2, "participation count not tracked");
        assert!(
            (second.0 - first.0).abs() < 1e-5,
            "identical geometry should keep the smoothed angle"
        );
    }

    #[test]
    fn loss_proportional_prefers_struggling_clients() {
        let mut s = LossProportional::new(1.0);
        let sums = vec![
            ClientSummary {
                client_id: 0,
                n_samples: 100,
                loss_before: 0.5,
                loss_after: 0.2,
            },
            ClientSummary {
                client_id: 1,
                n_samples: 100,
                loss_before: 2.0,
                loss_after: 0.2,
            },
        ];
        let alpha = normalize_factors(&s.impact_factors(0, &sums));
        assert!(
            (alpha[1] - 0.8).abs() < 1e-5,
            "expected 4:1 split, got {alpha:?}"
        );
    }

    #[test]
    fn loss_proportional_q_zero_is_fedavg() {
        let mut s = LossProportional::new(0.0);
        let sums = vec![
            ClientSummary {
                client_id: 0,
                n_samples: 300,
                loss_before: 9.0,
                loss_after: 0.2,
            },
            ClientSummary {
                client_id: 1,
                n_samples: 100,
                loss_before: 0.1,
                loss_after: 0.2,
            },
        ];
        let alpha = normalize_factors(&s.impact_factors(0, &sums));
        assert!((alpha[0] - 0.75).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn fedadp_rejects_bad_alpha() {
        let _ = FedAdp::new(0.0);
    }
}
