//! Client-side local training (paper Algorithm 2, lines 5–12).
//!
//! Each selected client receives the global model, measures the inference
//! loss *before* training (`l_before` — one of the DRL state components),
//! runs `E` epochs of mini-batch SGD (optionally with FedProx's proximal
//! term), measures the loss *after* training, and ships
//! `(l_before, l_after, n_k, w_k)` back to the server.

use crate::metrics::inference_loss;
use feddrl_data::dataset::Dataset;
use feddrl_nn::loss::cross_entropy_logits;
use feddrl_nn::mask::StructuredMask;
use feddrl_nn::model::Sequential;
use feddrl_nn::optim::Sgd;
use feddrl_nn::rng::Rng64;
use serde::{Deserialize, Serialize};

/// Salt for the per-`(round, client)` structured-dropout mask stream:
/// `Rng64::new(seed ^ MASK_SALT).derive(round).derive(client_id)`. Disjoint
/// from the training (`0xC11E`), dropout (`DROPOUT_SALT`) and churn
/// (`CHURN_SALT`) streams, so enabling adaptive structured dropout never
/// perturbs any other draw.
pub const MASK_SALT: u64 = 0x3A5C;

/// Derive the structured-dropout mask for one `(round, client)` dispatch.
///
/// This is the *only* sanctioned derivation: both the in-process session
/// path and the networked runtime call it, which is what lets a
/// `MaskedUpdate` frame omit the mask entirely — the server re-derives the
/// identical mask from `(seed, round, client_id, keep_ratio)` and the
/// model's layer structure. Any drift between the two sides would scatter
/// kept weights into the wrong positions, so keep this a single function.
pub fn dispatch_mask(
    model: &Sequential,
    seed: u64,
    round: u64,
    client_id: u64,
    keep_ratio: f64,
) -> StructuredMask {
    let mut rng = Rng64::new(seed ^ MASK_SALT).derive(round).derive(client_id);
    StructuredMask::derive(model, keep_ratio, &mut rng)
}

/// Hyper-parameters of the local solver (paper §4.1.2: SGD, `E = 5`,
/// `lr = 0.01`, batch 10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainConfig {
    /// Local epochs `E`.
    pub epochs: usize,
    /// Mini-batch size `b`.
    pub batch_size: usize,
    /// SGD learning rate `η`.
    pub lr: f32,
    /// SGD momentum (0 = paper-faithful plain SGD).
    pub momentum: f32,
    /// FedProx proximal coefficient `μ`; `None` disables the term
    /// (FedAvg/FedDRL), `Some(0.01)` is the paper's FedProx setting.
    pub proximal_mu: Option<f32>,
    /// Optional global gradient-norm clip (stabilizer; not in the paper).
    pub clip_norm: Option<f32>,
}

impl Default for LocalTrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 10,
            lr: 0.01,
            momentum: 0.0,
            proximal_mu: None,
            clip_norm: None,
        }
    }
}

/// Everything a client reports to the server at the end of a round
/// (paper's tuple `p_k^t = {l_before, l_after, n_k, w_k}`).
#[derive(Debug, Clone)]
pub struct ClientUpdate {
    /// Client index in the federation.
    pub client_id: usize,
    /// Locally-trained flat weight vector `w_k^t`.
    pub weights: Vec<f32>,
    /// Local sample count `n_k`.
    pub n_samples: usize,
    /// Inference loss of the *global* model on the client's data, measured
    /// on receipt (start of round).
    pub loss_before: f32,
    /// Inference loss of the *locally trained* model at the end of the
    /// round.
    pub loss_after: f32,
    /// Model versions the update is behind at aggregation time: 0 for a
    /// fresh report (every synchronous round), positive for updates
    /// carried across rounds or buffered by an asynchronous executor. Set
    /// by the executor, never by the client — a client cannot know how
    /// many aggregations happened while it was training.
    pub staleness: usize,
    /// The structured sub-model mask this update was trained under, or
    /// `None` for full-model training. Masked positions of `weights` are
    /// exactly zero and must not vote in aggregation — the server's
    /// mask-aware average excludes them per position.
    pub mask: Option<StructuredMask>,
}

impl ClientUpdate {
    /// Fraction of the model this update trained: the mask's keep fraction,
    /// or `1.0` for full-model training. One of the DRL availability
    /// observations, and the exp_dynamics sweep's sub-model-size metric.
    pub fn mask_ratio(&self) -> f32 {
        self.mask.as_ref().map_or(1.0, |m| m.keep_fraction() as f32)
    }

    /// Scalar summary (everything except the weight vector) — what the DRL
    /// agent's state is built from.
    pub fn summary(&self) -> ClientSummary {
        ClientSummary {
            client_id: self.client_id,
            n_samples: self.n_samples,
            loss_before: self.loss_before,
            loss_after: self.loss_after,
        }
    }
}

/// The per-client scalars used to form the DRL state (paper §3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientSummary {
    /// Client index in the federation.
    pub client_id: usize,
    /// Local sample count `n_k`.
    pub n_samples: usize,
    /// Global-model loss on the client's data at round start.
    pub loss_before: f32,
    /// Local-model loss after `E` epochs.
    pub loss_after: f32,
}

/// Run one client's local round: evaluate, train `E` epochs, evaluate.
///
/// `model` must already hold the broadcast global weights; it is consumed
/// as the client's working copy. `indices` selects the client's shard of
/// `train`. Deterministic given `rng`.
///
/// # Panics
/// Panics if `indices` is empty — the partitioners guarantee non-empty
/// shards, so an empty shard indicates orchestration error.
pub fn run_local_round(
    model: Sequential,
    train: &Dataset,
    indices: &[usize],
    client_id: usize,
    cfg: &LocalTrainConfig,
    rng: &mut Rng64,
) -> ClientUpdate {
    train_with_mask(model, train, indices, client_id, cfg, None, rng)
}

/// Run one client's local round on a *structured sub-model*: masked hidden
/// units are deleted from the broadcast weights before training and pinned
/// at zero throughout, so the device trains (and uploads) a strictly
/// smaller model. A full mask delegates to [`run_local_round`] and is
/// byte-identical to it — the guarantee the fleet-dynamics suite pins.
///
/// # Panics
/// Panics on an empty shard, degenerate config, or a mask whose length
/// mismatches the model's parameter count.
pub fn run_local_round_masked(
    model: Sequential,
    train: &Dataset,
    indices: &[usize],
    client_id: usize,
    cfg: &LocalTrainConfig,
    mask: StructuredMask,
    rng: &mut Rng64,
) -> ClientUpdate {
    if mask.is_full() {
        let mut update = run_local_round(model, train, indices, client_id, cfg, rng);
        update.mask = Some(mask);
        return update;
    }
    train_with_mask(model, train, indices, client_id, cfg, Some(mask), rng)
}

fn train_with_mask(
    mut model: Sequential,
    train: &Dataset,
    indices: &[usize],
    client_id: usize,
    cfg: &LocalTrainConfig,
    mask: Option<StructuredMask>,
    rng: &mut Rng64,
) -> ClientUpdate {
    assert!(
        !indices.is_empty(),
        "client {client_id} has no local samples"
    );
    assert!(cfg.epochs > 0, "local epochs must be positive");
    assert!(cfg.batch_size > 0, "batch size must be positive");

    if let Some(m) = mask.as_ref() {
        // Delete the masked units from the broadcast model. Everything the
        // client measures and trains from here on is the sub-model: the
        // proximal anchor, `loss_before`, and every SGD step.
        let mut flat = model.flat_params();
        m.apply(&mut flat);
        model.set_flat_params(&flat);
    }
    let w_global = cfg.proximal_mu.map(|_| model.flat_params());
    let loss_before = inference_loss(&mut model, train, indices, cfg.batch_size.max(64));

    let mut opt = Sgd::new(cfg.lr, cfg.momentum, 0.0);
    let mut order: Vec<usize> = indices.to_vec();
    for _ in 0..cfg.epochs {
        rng.shuffle(&mut order);
        for batch in order.chunks(cfg.batch_size) {
            let (x, y) = train.gather(batch);
            let logits = model.forward(&x, true);
            let (_, grad) = cross_entropy_logits(&logits, &y);
            model.zero_grad();
            model.backward(&grad);
            if let (Some(mu), Some(w_ref)) = (cfg.proximal_mu, w_global.as_deref()) {
                model.add_proximal_grad(mu, w_ref);
            }
            if let Some(max_norm) = cfg.clip_norm {
                model.clip_grad_norm(max_norm);
            }
            opt.step(&mut model);
            if let Some(m) = mask.as_ref() {
                // Structural deletion makes every masked gradient exactly
                // zero, so this re-projection is a no-op in exact
                // arithmetic — it pins the invariant against future layer
                // types whose masked gradients are only *numerically* zero.
                let mut flat = model.flat_params();
                m.apply(&mut flat);
                model.set_flat_params(&flat);
            }
        }
    }

    let loss_after = inference_loss(&mut model, train, indices, cfg.batch_size.max(64));
    ClientUpdate {
        client_id,
        weights: model.flat_params(),
        n_samples: indices.len(),
        loss_before,
        loss_after,
        staleness: 0,
        mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feddrl_data::synth::SynthSpec;
    use feddrl_nn::zoo::ModelSpec;

    fn setup() -> (Dataset, Sequential) {
        let (train, _) = SynthSpec::mnist_like().generate(1);
        let spec = ModelSpec::Mlp {
            in_dim: train.feature_dim(),
            hidden: vec![32],
            out_dim: train.num_classes(),
        };
        (train, spec.build(42))
    }

    #[test]
    fn local_training_reduces_local_loss() {
        let (train, model) = setup();
        let indices: Vec<usize> = (0..400).collect();
        let cfg = LocalTrainConfig {
            epochs: 3,
            lr: 0.05,
            ..Default::default()
        };
        let update = run_local_round(model, &train, &indices, 0, &cfg, &mut Rng64::new(2));
        assert!(
            update.loss_after < update.loss_before * 0.9,
            "training did not reduce loss: {} -> {}",
            update.loss_before,
            update.loss_after
        );
        assert_eq!(update.n_samples, 400);
        assert_eq!(update.client_id, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, model) = setup();
        let indices: Vec<usize> = (0..100).collect();
        let cfg = LocalTrainConfig::default();
        let a = run_local_round(model.clone(), &train, &indices, 1, &cfg, &mut Rng64::new(3));
        let b = run_local_round(model, &train, &indices, 1, &cfg, &mut Rng64::new(3));
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.loss_before, b.loss_before);
        assert_eq!(a.loss_after, b.loss_after);
    }

    #[test]
    fn proximal_term_keeps_weights_closer_to_global() {
        let (train, model) = setup();
        let indices: Vec<usize> = (0..200).collect();
        let w0 = model.flat_params();
        let plain_cfg = LocalTrainConfig {
            epochs: 3,
            lr: 0.05,
            ..Default::default()
        };
        let prox_cfg = LocalTrainConfig {
            proximal_mu: Some(0.5),
            ..plain_cfg.clone()
        };
        let plain = run_local_round(
            model.clone(),
            &train,
            &indices,
            0,
            &plain_cfg,
            &mut Rng64::new(4),
        );
        let prox = run_local_round(model, &train, &indices, 0, &prox_cfg, &mut Rng64::new(4));
        let dist = |w: &[f32]| -> f32 {
            w.iter()
                .zip(w0.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        };
        assert!(
            dist(&prox.weights) < dist(&plain.weights),
            "proximal term failed to anchor weights ({} !< {})",
            dist(&prox.weights),
            dist(&plain.weights)
        );
    }

    #[test]
    fn summary_strips_weights() {
        let (train, model) = setup();
        let indices: Vec<usize> = (0..50).collect();
        let update = run_local_round(
            model,
            &train,
            &indices,
            7,
            &LocalTrainConfig::default(),
            &mut Rng64::new(5),
        );
        let s = update.summary();
        assert_eq!(s.client_id, 7);
        assert_eq!(s.n_samples, 50);
        assert_eq!(s.loss_before, update.loss_before);
        assert_eq!(s.loss_after, update.loss_after);
    }

    #[test]
    #[should_panic(expected = "no local samples")]
    fn rejects_empty_shard() {
        let (train, model) = setup();
        let _ = run_local_round(
            model,
            &train,
            &[],
            0,
            &LocalTrainConfig::default(),
            &mut Rng64::new(6),
        );
    }

    #[test]
    fn full_mask_is_byte_identical_to_plain_training() {
        let (train, model) = setup();
        let indices: Vec<usize> = (0..100).collect();
        let cfg = LocalTrainConfig::default();
        let plain = run_local_round(model.clone(), &train, &indices, 2, &cfg, &mut Rng64::new(9));
        let full = StructuredMask::derive(&model, 1.0, &mut Rng64::new(1));
        let masked =
            run_local_round_masked(model, &train, &indices, 2, &cfg, full, &mut Rng64::new(9));
        assert_eq!(plain.weights, masked.weights);
        assert_eq!(plain.loss_before, masked.loss_before);
        assert_eq!(plain.loss_after, masked.loss_after);
        assert_eq!(masked.mask_ratio(), 1.0);
        assert_eq!(plain.mask_ratio(), 1.0, "absent mask reads as full");
    }

    #[test]
    fn masked_training_pins_masked_positions_at_zero_and_still_learns() {
        let (train, model) = setup();
        let indices: Vec<usize> = (0..400).collect();
        let cfg = LocalTrainConfig {
            epochs: 3,
            lr: 0.05,
            ..Default::default()
        };
        let mask = StructuredMask::derive(&model, 0.5, &mut Rng64::new(21));
        assert!(!mask.is_full());
        let update = run_local_round_masked(
            model,
            &train,
            &indices,
            3,
            &cfg,
            mask.clone(),
            &mut Rng64::new(9),
        );
        for (p, w) in update.weights.iter().enumerate() {
            if !mask.keeps(p) {
                assert_eq!(*w, 0.0, "masked position {p} escaped the sub-model");
            }
        }
        assert!(update.mask_ratio() < 1.0);
        assert!(
            update.loss_after < update.loss_before,
            "half-width sub-model failed to learn: {} -> {}",
            update.loss_before,
            update.loss_after
        );
    }

    #[test]
    fn clip_norm_is_applied_without_breaking_learning() {
        let (train, model) = setup();
        let indices: Vec<usize> = (0..200).collect();
        let cfg = LocalTrainConfig {
            epochs: 2,
            lr: 0.05,
            clip_norm: Some(1.0),
            ..Default::default()
        };
        let update = run_local_round(model, &train, &indices, 0, &cfg, &mut Rng64::new(7));
        assert!(update.loss_after < update.loss_before);
    }
}
