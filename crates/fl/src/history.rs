//! Run histories: everything recorded per communication round, exportable
//! as JSON/CSV for the experiment harness (Figures 5–8 and 10 are plotted
//! straight from these records).

use crate::metrics::{best_accuracy, ConvergenceStats};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Predicate for `skip_serializing_if`: counters that are only meaningful
/// for some executors stay out of the JSON when zero, so histories from
/// older executors keep their exact shape.
fn usize_is_zero(n: &usize) -> bool {
    *n == 0
}

/// Heterogeneity telemetry for one round (produced by
/// `executor::DeadlineExecutor` and `executor::BufferedExecutor`; absent
/// for the ideal executor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroRoundRecord {
    /// Simulated wall-clock of the round in seconds (virtual time from
    /// broadcast to the last accepted upload, or the deadline if the
    /// server had to wait one out; for the buffered executor, the slice of
    /// the persistent virtual timeline this aggregation consumed).
    pub sim_time_s: f64,
    /// Sampled clients that dropped out before reporting.
    pub dropouts: usize,
    /// Sampled clients whose report missed the round deadline.
    pub stragglers: usize,
    /// Stale updates carried in from earlier rounds and aggregated now.
    pub carried_in: usize,
    /// Sampled clients skipped because their device was still training or
    /// uploading an earlier model version (buffered executor only; omitted
    /// from JSON when zero so deadline/ideal histories keep their shape).
    #[serde(default, skip_serializing_if = "usize_is_zero")]
    pub busy: usize,
    /// Updates that had arrived but were still waiting for the
    /// aggregation buffer to fill when the round ended (buffered executor
    /// only; omitted from JSON when zero).
    #[serde(default, skip_serializing_if = "usize_is_zero")]
    pub buffered: usize,
    /// Clients that joined the federation (churn arrivals) since the
    /// previous round ended, including mid-round arrivals (omitted from
    /// JSON when zero so churn-free histories keep their shape).
    #[serde(default, skip_serializing_if = "usize_is_zero")]
    pub joined: usize,
    /// Clients that departed the federation (churn departures) since the
    /// previous round ended, including mid-round departures (omitted from
    /// JSON when zero).
    #[serde(default, skip_serializing_if = "usize_is_zero")]
    pub departed: usize,
    /// Dispatched clients that trained a structured-dropout sub-model
    /// (keep ratio below 1) instead of being dropped or carried stale
    /// (omitted from JSON when zero).
    #[serde(default, skip_serializing_if = "usize_is_zero")]
    pub masked: usize,
    /// Per-update staleness in model versions, aligned with
    /// `aggregated_ids` (omitted from JSON when empty — an all-fresh
    /// round under a round-barrier executor records nothing here).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub staleness: Vec<usize>,
    /// Ids of the clients whose updates were aggregated this round, in
    /// aggregation order — i.e. aligned with the record's
    /// `impact_factors`/`client_losses_before`. Unlike `selected` (the
    /// *sampled* set), this can omit dropouts/stragglers and, under
    /// carry-over, include clients sampled in an earlier round.
    pub aggregated_ids: Vec<usize>,
}

impl HeteroRoundRecord {
    /// Updates actually aggregated this round (arrivals + carried).
    pub fn aggregated(&self) -> usize {
        self.aggregated_ids.len()
    }
}

/// Per-round measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Communication round (0-based).
    pub round: usize,
    /// Top-1 accuracy of the new global model on the test set.
    pub test_accuracy: f32,
    /// Mean test loss of the new global model.
    pub test_loss: f32,
    /// Ids of the clients *sampled* this round. Under the ideal executor
    /// this is also the aggregated set; under hetero executors the
    /// aggregated set is [`HeteroRoundRecord::aggregated_ids`] instead
    /// (dropouts/stragglers omitted, carried-over updates included).
    pub selected: Vec<usize>,
    /// Normalized impact factors applied at aggregation, one per
    /// *aggregated* update in aggregation order — aligned with
    /// [`HeteroRoundRecord::aggregated_ids`] when `hetero` is present
    /// (and with `selected` only under the ideal executor, where the two
    /// sets coincide).
    pub impact_factors: Vec<f32>,
    /// Inference loss of the broadcast global model on each aggregated
    /// client's data (`l_before`; Figure 6's robustness metric), aligned
    /// with `impact_factors` — *not* with `selected` under hetero
    /// executors.
    pub client_losses_before: Vec<f32>,
    /// Wall-clock spent computing impact factors (µs) — Figure 9's "DRL".
    pub strategy_micros: u64,
    /// Wall-clock spent averaging weight vectors (µs) — Figure 9's
    /// "Aggregation".
    pub aggregate_micros: u64,
    /// Heterogeneity telemetry; `None` under the ideal executor, and then
    /// omitted from JSON so ideal histories stay byte-identical to the
    /// pre-executor format.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub hetero: Option<HeteroRoundRecord>,
}

/// A complete federated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunHistory {
    /// Strategy name ("FedAvg", "FedProx", "FedDRL", …).
    pub method: String,
    /// Dataset name ("mnist-like", …).
    pub dataset: String,
    /// Partition code ("PA", "CE", "CN", …).
    pub partition: String,
    /// Total clients `N`.
    pub n_clients: usize,
    /// Participants per round `K`.
    pub participants: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// One record per round, in order.
    pub records: Vec<RoundRecord>,
}

impl RunHistory {
    /// Accuracy trajectory.
    pub fn accuracies(&self) -> Vec<f32> {
        self.records.iter().map(|r| r.test_accuracy).collect()
    }

    /// Best accuracy and when it was reached.
    pub fn best(&self) -> ConvergenceStats {
        best_accuracy(&self.accuracies())
    }

    /// Moving average of the accuracy trajectory (the paper smooths
    /// Fashion-MNIST curves over 10 rounds for Figure 5).
    pub fn smoothed_accuracies(&self, window: usize) -> Vec<f32> {
        let acc = self.accuracies();
        let w = window.max(1);
        acc.iter()
            .enumerate()
            .map(|(i, _)| {
                let lo = i.saturating_sub(w - 1);
                let slice = &acc[lo..=i];
                slice.iter().sum::<f32>() / slice.len() as f32
            })
            .collect()
    }

    /// Total simulated wall-clock over the run in seconds (0 for ideal
    /// runs, where no virtual time passes).
    pub fn total_sim_time_s(&self) -> f64 {
        // Folded from +0.0: `Sum<f64>`'s identity is -0.0, which formats
        // as "-0.00" for ideal (telemetry-free) histories.
        self.records
            .iter()
            .filter_map(|r| r.hetero.as_ref().map(|h| h.sim_time_s))
            .fold(0.0, |acc, t| acc + t)
    }

    /// Total deadline-missing clients over the run.
    pub fn total_stragglers(&self) -> usize {
        self.records
            .iter()
            .filter_map(|r| r.hetero.as_ref().map(|h| h.stragglers))
            .sum()
    }

    /// Total dropped-out clients over the run.
    pub fn total_dropouts(&self) -> usize {
        self.records
            .iter()
            .filter_map(|r| r.hetero.as_ref().map(|h| h.dropouts))
            .sum()
    }

    /// Mean staleness over every aggregated update that recorded one
    /// (0 when the run never aggregated a stale update).
    pub fn mean_staleness(&self) -> f64 {
        let (mut total, mut count) = (0usize, 0usize);
        for r in &self.records {
            if let Some(h) = &r.hetero {
                total += h.staleness.iter().sum::<usize>();
                count += h.staleness.len();
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Simulated seconds until test accuracy first reaches `target` —
    /// the wall-clock-to-accuracy metric asynchronous executors are
    /// compared on. `None` if the run never got there (including ideal
    /// runs, where no virtual time passes).
    pub fn sim_time_to_accuracy_s(&self, target: f32) -> Option<f64> {
        let mut elapsed = 0.0f64;
        for r in &self.records {
            elapsed += r.hetero.as_ref().map_or(0.0, |h| h.sim_time_s);
            if r.test_accuracy >= target {
                return Some(elapsed);
            }
        }
        None
    }

    /// Mean number of updates aggregated per round — `participants` under
    /// the ideal executor, less once dropouts/deadlines bite.
    pub fn mean_participation(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let total: usize = self.records.iter().map(|r| r.impact_factors.len()).sum();
        total as f64 / self.records.len() as f64
    }

    /// CSV with one row per round: `round,accuracy,loss,strategy_us,agg_us`.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("round,test_accuracy,test_loss,strategy_micros,aggregate_micros\n");
        for r in &self.records {
            out.push_str(&format!(
                "{},{:.6},{:.6},{},{}\n",
                r.round, r.test_accuracy, r.test_loss, r.strategy_micros, r.aggregate_micros
            ));
        }
        out
    }

    /// Serialize to pretty JSON at `path` (parent directories must exist).
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("history serialization");
        std::fs::write(path, json)
    }

    /// Deserialize from a JSON file produced by [`RunHistory::save_json`].
    pub fn load_json(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_history() -> RunHistory {
        RunHistory {
            method: "FedAvg".into(),
            dataset: "mnist-like".into(),
            partition: "CE".into(),
            n_clients: 10,
            participants: 10,
            seed: 1,
            records: (0..5)
                .map(|round| RoundRecord {
                    round,
                    test_accuracy: 0.1 * (round as f32 + 1.0),
                    test_loss: 1.0 / (round as f32 + 1.0),
                    selected: vec![0, 1],
                    impact_factors: vec![0.5, 0.5],
                    client_losses_before: vec![1.0, 2.0],
                    strategy_micros: 3,
                    aggregate_micros: 45,
                    hetero: None,
                })
                .collect(),
        }
    }

    fn hetero_history() -> RunHistory {
        let mut h = toy_history();
        for (i, r) in h.records.iter_mut().enumerate() {
            r.hetero = Some(HeteroRoundRecord {
                sim_time_s: 10.0 + i as f64,
                dropouts: 1,
                stragglers: 2,
                carried_in: 0,
                busy: 0,
                buffered: 0,
                joined: 0,
                departed: 0,
                masked: 0,
                staleness: Vec::new(),
                aggregated_ids: vec![0, 1],
            });
        }
        h
    }

    #[test]
    fn best_tracks_maximum() {
        let h = toy_history();
        let best = h.best();
        assert!((best.best_accuracy - 0.5).abs() < 1e-6);
        assert_eq!(best.best_round, 4);
    }

    #[test]
    fn smoothing_window_one_is_identity() {
        let h = toy_history();
        assert_eq!(h.smoothed_accuracies(1), h.accuracies());
    }

    #[test]
    fn smoothing_averages_prefix() {
        let h = toy_history();
        let sm = h.smoothed_accuracies(3);
        assert!((sm[0] - 0.1).abs() < 1e-6);
        assert!((sm[1] - 0.15).abs() < 1e-6);
        assert!((sm[4] - 0.4).abs() < 1e-6); // (0.3+0.4+0.5)/3
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = toy_history().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("round,"));
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn ideal_records_serialize_without_hetero_key() {
        let json = serde_json::to_string_pretty(&toy_history()).unwrap();
        assert!(
            !json.contains("hetero"),
            "ideal history leaked a hetero key:\n{json}"
        );
        // And the key's absence deserializes back to None.
        let back: RunHistory = serde_json::from_str(&json).unwrap();
        assert!(back.records.iter().all(|r| r.hetero.is_none()));
    }

    #[test]
    fn hetero_records_roundtrip() {
        let h = hetero_history();
        let json = serde_json::to_string(&h).unwrap();
        let back: RunHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records[2].hetero, h.records[2].hetero);
    }

    #[test]
    fn hetero_totals_sum_over_rounds() {
        let h = hetero_history();
        assert!((h.total_sim_time_s() - (10.0 + 11.0 + 12.0 + 13.0 + 14.0)).abs() < 1e-9);
        assert_eq!(h.total_stragglers(), 10);
        assert_eq!(h.total_dropouts(), 5);
        assert!((h.mean_participation() - 2.0).abs() < 1e-9);
        let ideal = toy_history();
        assert_eq!(ideal.total_sim_time_s(), 0.0);
        assert!(
            ideal.total_sim_time_s().is_sign_positive(),
            "empty-sum must not leak IEEE -0.0 into reports"
        );
        assert_eq!(ideal.total_stragglers(), 0);
    }

    #[test]
    fn dynamics_free_records_omit_churn_and_mask_keys() {
        // A static-fleet record keeps the exact pre-dynamics JSON shape...
        let json = serde_json::to_string(&hetero_history()).unwrap();
        assert!(!json.contains("joined"), "zero joined leaked: {json}");
        assert!(!json.contains("departed"), "zero departed leaked: {json}");
        assert!(!json.contains("masked"), "zero masked leaked: {json}");
        // ...while live churn/mask telemetry round-trips.
        let mut h = hetero_history();
        let rec = h.records[3].hetero.as_mut().unwrap();
        rec.joined = 2;
        rec.departed = 1;
        rec.masked = 3;
        let json = serde_json::to_string(&h).unwrap();
        assert!(json.contains("joined") && json.contains("masked"));
        let back: RunHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records[3].hetero, h.records[3].hetero);
    }

    #[test]
    fn fresh_hetero_records_omit_async_keys() {
        // A deadline-style record (no busy/buffered/staleness activity)
        // keeps the exact pre-async JSON shape...
        let json = serde_json::to_string(&hetero_history()).unwrap();
        assert!(!json.contains("busy"), "zero busy leaked: {json}");
        assert!(!json.contains("buffered"), "zero buffered leaked: {json}");
        assert!(
            !json.contains("staleness"),
            "empty staleness leaked: {json}"
        );
        // ...and the omitted keys deserialize back to their defaults.
        let back: RunHistory = serde_json::from_str(&json).unwrap();
        let h = back.records[0].hetero.as_ref().unwrap();
        assert_eq!((h.busy, h.buffered), (0, 0));
        assert!(h.staleness.is_empty());
    }

    #[test]
    fn async_hetero_fields_roundtrip() {
        let mut h = hetero_history();
        let rec = h.records[1].hetero.as_mut().unwrap();
        rec.busy = 2;
        rec.buffered = 1;
        rec.staleness = vec![3, 0];
        let json = serde_json::to_string(&h).unwrap();
        assert!(json.contains("busy") && json.contains("staleness"));
        let back: RunHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records[1].hetero, h.records[1].hetero);
    }

    #[test]
    fn mean_staleness_averages_recorded_updates_only() {
        let mut h = hetero_history();
        assert_eq!(h.mean_staleness(), 0.0);
        h.records[0].hetero.as_mut().unwrap().staleness = vec![2, 0];
        h.records[1].hetero.as_mut().unwrap().staleness = vec![4];
        assert!((h.mean_staleness() - 2.0).abs() < 1e-9); // (2+0+4)/3
    }

    #[test]
    fn sim_time_to_accuracy_accumulates_until_target() {
        let h = hetero_history(); // accuracies 0.1..0.5, times 10..14
                                  // 0.3 is first reached at round 2: 10 + 11 + 12 seconds elapsed.
        assert_eq!(h.sim_time_to_accuracy_s(0.3), Some(33.0));
        assert_eq!(h.sim_time_to_accuracy_s(0.9), None);
        assert_eq!(toy_history().sim_time_to_accuracy_s(0.3), Some(0.0));
    }

    #[test]
    fn json_roundtrip_via_disk() {
        let h = toy_history();
        let dir = std::env::temp_dir().join("feddrl_fl_history_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.json");
        h.save_json(&path).unwrap();
        let back = RunHistory::load_json(&path).unwrap();
        assert_eq!(back.records.len(), 5);
        assert_eq!(back.method, "FedAvg");
        std::fs::remove_dir_all(&dir).ok();
    }
}
