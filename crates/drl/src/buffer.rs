//! Experience replay with temporal-difference prioritization
//! (paper Algorithm 1, lines 1–4).

use feddrl_nn::rng::Rng64;
use serde::{Deserialize, Serialize};

/// One transition `(s, a, r, s′)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experience {
    /// Observation at decision time.
    pub state: Vec<f32>,
    /// Action emitted by the policy (the `(μ, σ)` tuple in FedDRL).
    pub action: Vec<f32>,
    /// Reward received after the environment step.
    pub reward: f32,
    /// Observation after the step.
    pub next_state: Vec<f32>,
}

/// Fixed-capacity ring buffer of experiences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayBuffer {
    capacity: usize,
    items: Vec<Experience>,
    /// Ring write head (valid once `items.len() == capacity`).
    head: usize,
}

impl ReplayBuffer {
    /// Create a buffer that retains at most `capacity` experiences.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            items: Vec::new(),
            head: 0,
        }
    }

    /// Number of stored experiences.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no experience is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of retained experiences.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an experience, evicting the oldest once full.
    pub fn push(&mut self, exp: Experience) {
        if self.items.len() < self.capacity {
            self.items.push(exp);
        } else {
            self.items[self.head] = exp;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Append every experience from `other` (used by the two-stage
    /// trainer's buffer merge, paper §3.4.2).
    pub fn absorb(&mut self, other: &ReplayBuffer) {
        for exp in &other.items {
            self.push(exp.clone());
        }
    }

    /// All stored experiences (insertion order not guaranteed once the
    /// ring has wrapped).
    pub fn iter(&self) -> impl Iterator<Item = &Experience> {
        self.items.iter()
    }

    /// Uniform random sample of `batch` experiences (with replacement when
    /// the buffer is smaller than `batch`).
    pub fn sample_uniform(&self, batch: usize, rng: &mut Rng64) -> Vec<&Experience> {
        assert!(!self.is_empty(), "sampling from empty replay buffer");
        (0..batch)
            .map(|_| &self.items[rng.below(self.items.len())])
            .collect()
    }

    /// TD-prioritized sample: `priorities[i]` is the priority of
    /// `items[i]` (the caller computes `|r + γQ′ − Q|` with its critic —
    /// Algorithm 1 line 1). Sampling is rank-based: experiences are sorted
    /// by descending priority and drawn with probability ∝ 1/rank, which
    /// keeps the sort order the paper prescribes while remaining robust to
    /// the scale of TD errors.
    ///
    /// # Panics
    /// Panics if `priorities.len() != self.len()` or the buffer is empty.
    pub fn sample_prioritized(
        &self,
        batch: usize,
        priorities: &[f32],
        rng: &mut Rng64,
    ) -> Vec<&Experience> {
        assert!(!self.is_empty(), "sampling from empty replay buffer");
        assert_eq!(
            priorities.len(),
            self.items.len(),
            "priorities/buffer length mismatch"
        );
        // Rank experiences by descending priority (Algorithm 1 line 2).
        let mut order: Vec<usize> = (0..self.items.len()).collect();
        order.sort_by(|&a, &b| {
            priorities[b]
                .partial_cmp(&priorities[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let weights: Vec<f64> = (0..order.len())
            .map(|rank| 1.0 / (rank + 1) as f64)
            .collect();
        (0..batch)
            .map(|_| {
                let rank = rng.weighted_index(&weights);
                &self.items[order[rank]]
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(tag: f32) -> Experience {
        Experience {
            state: vec![tag; 3],
            action: vec![tag; 2],
            reward: tag,
            next_state: vec![tag + 0.5; 3],
        }
    }

    #[test]
    fn push_until_capacity_then_ring() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(exp(i as f32));
        }
        assert_eq!(buf.len(), 3);
        // 0 and 1 evicted; rewards present: {2, 3, 4}.
        let mut rewards: Vec<f32> = buf.iter().map(|e| e.reward).collect();
        rewards.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(rewards, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn absorb_merges_buffers() {
        let mut a = ReplayBuffer::new(10);
        let mut b = ReplayBuffer::new(10);
        a.push(exp(1.0));
        b.push(exp(2.0));
        b.push(exp(3.0));
        a.absorb(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn uniform_sampling_covers_buffer() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..8 {
            buf.push(exp(i as f32));
        }
        let mut rng = Rng64::new(1);
        let sample = buf.sample_uniform(400, &mut rng);
        let mut seen = [false; 8];
        for e in sample {
            seen[e.reward as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "400 uniform draws missed an item");
    }

    #[test]
    fn prioritized_sampling_prefers_high_priority() {
        let mut buf = ReplayBuffer::new(4);
        for i in 0..4 {
            buf.push(exp(i as f32));
        }
        // Item 3 has overwhelming priority.
        let priorities = vec![0.01, 0.01, 0.01, 100.0];
        let mut rng = Rng64::new(2);
        let sample = buf.sample_prioritized(1000, &priorities, &mut rng);
        let hits_top = sample.iter().filter(|e| e.reward == 3.0).count();
        // Rank-based 1/rank weights: top rank has weight 1 of (1+1/2+1/3+1/4)
        // ≈ 0.48 of the mass.
        assert!(
            hits_top > 380,
            "top-priority item drawn only {hits_top}/1000 times"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn prioritized_rejects_wrong_priority_count() {
        let mut buf = ReplayBuffer::new(2);
        buf.push(exp(0.0));
        let mut rng = Rng64::new(3);
        let _ = buf.sample_prioritized(1, &[1.0, 2.0], &mut rng);
    }

    #[test]
    #[should_panic(expected = "empty replay buffer")]
    fn sampling_empty_panics() {
        let buf = ReplayBuffer::new(2);
        let mut rng = Rng64::new(4);
        let _ = buf.sample_uniform(1, &mut rng);
    }

    #[test]
    fn serde_roundtrip() {
        let mut buf = ReplayBuffer::new(4);
        buf.push(exp(7.0));
        let json = serde_json::to_string(&buf).unwrap();
        let back: ReplayBuffer = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.iter().next().unwrap().reward, 7.0);
    }
}
