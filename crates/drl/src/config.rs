//! DDPG hyper-parameters (paper Table 1).

use serde::{Deserialize, Serialize};

/// Configuration of the DDPG agent.
///
/// Defaults reproduce the paper's Table 1 exactly; `state_dim`/`action_dim`
/// are supplied by the embedding application (FedDRL uses `3K` and `2K` for
/// `K` participating clients).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdpgConfig {
    /// Dimensionality of the observation vector.
    pub state_dim: usize,
    /// Dimensionality of the action vector.
    pub action_dim: usize,
    /// Fully-connected layers in the policy network (Table 1: 3).
    pub policy_layers: usize,
    /// Hidden layers in the value network (Table 1: 2).
    pub value_hidden_layers: usize,
    /// Width of every hidden layer (Table 1: 256).
    pub hidden: usize,
    /// Policy learning rate (Table 1: 1e-4).
    pub policy_lr: f32,
    /// Value learning rate (Table 1: 1e-3).
    pub value_lr: f32,
    /// Replay buffer capacity (Table 1: 100 000).
    pub buffer_capacity: usize,
    /// Discount factor γ (Table 1: 0.99).
    pub gamma: f32,
    /// Soft main→target transfer fraction (Table 1's ρ = 0.02, read as the
    /// standard DDPG τ; see DESIGN.md §3.1 for the discussion of the
    /// paper's ambiguous update direction).
    pub tau: f32,
    /// Mini-batch size for replay updates.
    pub batch_size: usize,
    /// Gradient updates per training invocation (Algorithm 1's `B`).
    pub updates_per_round: usize,
    /// Minimum experiences in the buffer before training starts
    /// (Algorithm 2's "if D is sufficient").
    pub warmup: usize,
    /// Std-dev of the Gaussian exploration noise ε added to the policy
    /// output while acting online (Algorithm 2, line 14).
    pub exploration_noise: f32,
    /// Multiplicative decay applied to the exploration noise after every
    /// explored action (1.0 = constant noise, the paper's implicit
    /// setting; scaled-down profiles anneal noise to exploit sooner).
    pub exploration_decay: f32,
    /// The paper's Eq. 6 stability constraint `σ ≤ β·μ`: the σ head is
    /// squashed into `[0, β·|μ|]` (β ∈ (0, 1], paper leaves the value
    /// unspecified; 0.2 ablated in `exp_ablation`).
    pub sigma_beta: f32,
    /// Use the paper's TD-prioritized replay sampling; `false` falls back
    /// to uniform sampling (ablation `exp_ablation`).
    pub prioritized_replay: bool,
    /// Seed for network init, exploration and replay sampling.
    pub seed: u64,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        Self {
            state_dim: 30,
            action_dim: 20,
            policy_layers: 3,
            value_hidden_layers: 2,
            hidden: 256,
            policy_lr: 1e-4,
            value_lr: 1e-3,
            buffer_capacity: 100_000,
            gamma: 0.99,
            tau: 0.02,
            batch_size: 64,
            updates_per_round: 4,
            warmup: 16,
            exploration_noise: 0.1,
            exploration_decay: 1.0,
            sigma_beta: 0.2,
            prioritized_replay: true,
            seed: 0xDD9,
        }
    }
}

impl DdpgConfig {
    /// Convenience constructor for an agent driving `k` federated clients:
    /// state `3k` (losses before/after + sample counts), action `2k`
    /// (Gaussian means + std-devs), paper defaults elsewhere.
    pub fn for_clients(k: usize) -> Self {
        Self {
            state_dim: 3 * k,
            action_dim: 2 * k,
            ..Default::default()
        }
    }

    /// Validate ranges; called by the agent constructor.
    pub fn validate(&self) {
        assert!(self.state_dim > 0, "state_dim must be positive");
        assert!(
            self.action_dim > 0 && self.action_dim.is_multiple_of(2),
            "action_dim must be positive and even (means + std-devs), got {}",
            self.action_dim
        );
        assert!(self.policy_layers >= 2, "policy needs >= 2 layers");
        assert!(self.hidden > 0, "hidden width must be positive");
        assert!(
            (0.0..1.0).contains(&self.gamma) || self.gamma == 1.0 - f32::EPSILON,
            "gamma must be in [0,1), got {}",
            self.gamma
        );
        assert!((0.0..=1.0).contains(&self.tau), "tau must be in [0,1]");
        assert!(self.batch_size > 0, "batch_size must be positive");
        assert!(
            self.buffer_capacity >= self.batch_size,
            "buffer capacity smaller than batch size"
        );
        assert!(
            self.exploration_decay > 0.0 && self.exploration_decay <= 1.0,
            "exploration_decay must be in (0,1], got {}",
            self.exploration_decay
        );
        assert!(
            self.sigma_beta > 0.0 && self.sigma_beta <= 1.0,
            "sigma_beta must be in (0,1], got {}",
            self.sigma_beta
        );
    }

    /// Render the Table 1 hyper-parameter block as printable rows.
    pub fn table1_rows(&self) -> Vec<(String, String)> {
        vec![
            ("pi-network's #layer".into(), self.policy_layers.to_string()),
            (
                "Q-network's #layer".into(),
                (self.value_hidden_layers + 1).to_string(),
            ),
            ("Hidden layer size".into(), self.hidden.to_string()),
            (
                "pi-network learning rate".into(),
                format!("{}", self.policy_lr),
            ),
            (
                "Q-network learning rate".into(),
                format!("{}", self.value_lr),
            ),
            (
                "Experience buffer size".into(),
                self.buffer_capacity.to_string(),
            ),
            ("Discount factor gamma".into(), format!("{}", self.gamma)),
            (
                "Soft main-target update factor rho".into(),
                format!("{}", self.tau),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table1() {
        let cfg = DdpgConfig::default();
        assert_eq!(cfg.policy_layers, 3);
        assert_eq!(cfg.value_hidden_layers, 2);
        assert_eq!(cfg.hidden, 256);
        assert_eq!(cfg.policy_lr, 1e-4);
        assert_eq!(cfg.value_lr, 1e-3);
        assert_eq!(cfg.buffer_capacity, 100_000);
        assert_eq!(cfg.gamma, 0.99);
        assert_eq!(cfg.tau, 0.02);
    }

    #[test]
    fn for_clients_sizes_dims() {
        let cfg = DdpgConfig::for_clients(10);
        assert_eq!(cfg.state_dim, 30);
        assert_eq!(cfg.action_dim, 20);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "even")]
    fn validate_rejects_odd_action_dim() {
        let cfg = DdpgConfig {
            action_dim: 3,
            ..Default::default()
        };
        cfg.validate();
    }

    #[test]
    fn table1_rows_cover_all_hyperparameters() {
        let rows = DdpgConfig::default().table1_rows();
        assert_eq!(rows.len(), 8);
        assert!(rows
            .iter()
            .any(|(k, v)| k.contains("buffer") && v == "100000"));
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = DdpgConfig::for_clients(5);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: DdpgConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
