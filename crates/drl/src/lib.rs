//! # feddrl-drl — the DDPG substrate of FedDRL
//!
//! A from-scratch deep-deterministic-policy-gradient implementation
//! matching the paper's §3.4 description and Table 1 configuration:
//!
//! * [`config::DdpgConfig`] — Table 1 hyper-parameters with validation;
//! * [`buffer::ReplayBuffer`] — experience store with the paper's
//!   temporal-difference prioritization (Algorithm 1, lines 1–2);
//! * [`ddpg::DdpgAgent`] — main/target policy and value networks, soft
//!   updates, exploration noise, and the analytic `(μ, σ)` action head
//!   enforcing Eq. 6's `σ ≤ β·μ` constraint;
//! * [`ddpg::sample_impact_factors`] — Eq. 5's
//!   `α = softmax(z), z ~ N(μ, σ)`;
//! * [`reward`] — Eq. 7's accuracy + fairness reward (sign-corrected, see
//!   DESIGN.md §3.1).
//!
//! The crate is deliberately independent of federated learning: it consumes
//! abstract state/action vectors, so it can be tested on synthetic control
//! problems (see the unit tests) and reused outside the FL context.

#![warn(missing_docs)]

pub mod buffer;
pub mod checkpoint;
pub mod config;
pub mod ddpg;
pub mod reward;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::buffer::{Experience, ReplayBuffer};
    pub use crate::checkpoint::AgentCheckpoint;
    pub use crate::config::DdpgConfig;
    pub use crate::ddpg::{sample_impact_factors, DdpgAgent, TrainStats};
    pub use crate::reward::{reward_from_losses, reward_terms, RewardTerms};
}
