//! The DDPG actor-critic agent (paper §3.4.1, Algorithm 1).
//!
//! Two network pairs, exactly as Figure 3(a): a *policy* (actor) mapping
//! states to the `(μ, σ)` action tuple and a *value* (critic) scoring
//! state-action pairs, each with a main and a ρ-soft-updated target copy.
//!
//! The action head applies the paper's parameterization on top of the raw
//! policy output: `μ = tanh(raw_μ)` bounds the Gaussian means, and
//! `σ = β·sigmoid(raw_σ)·(|μ| + ε)` enforces the stability constraint
//! `σ ≤ β·μ` of Eq. 6. The head is differentiated analytically inside the
//! policy update (deterministic policy-gradient ascent through the critic).

use crate::buffer::{Experience, ReplayBuffer};
use crate::config::DdpgConfig;
use feddrl_nn::init::Init;
use feddrl_nn::layers::{Activation, Dense};
use feddrl_nn::model::Sequential;
use feddrl_nn::optim::Sgd;
use feddrl_nn::rng::Rng64;
use feddrl_nn::tensor::{softmax, Tensor};

/// Floor added to `|μ|` in the σ head so exploration never fully collapses.
const SIGMA_FLOOR: f32 = 1e-3;

/// Diagnostics from one [`DdpgAgent::train`] invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrainStats {
    /// Mean critic MSE across the updates.
    pub value_loss: f32,
    /// Mean Q-value of the policy's actions (the ascent objective).
    pub mean_q: f32,
    /// Number of gradient updates performed.
    pub updates: usize,
}

/// DDPG actor-critic with TD-prioritized replay.
pub struct DdpgAgent {
    cfg: DdpgConfig,
    policy: Sequential,
    policy_target: Sequential,
    value: Sequential,
    value_target: Sequential,
    policy_opt: Sgd,
    value_opt: Sgd,
    /// Experience store (public: the two-stage trainer merges buffers).
    pub buffer: ReplayBuffer,
    rng: Rng64,
    /// Current exploration-noise multiplier (anneals by
    /// `exploration_decay` per explored action).
    noise_scale: f32,
}

/// Build the 3-layer policy network of Table 1.
fn build_policy(cfg: &DdpgConfig, rng: &mut Rng64) -> Sequential {
    let mut m = Sequential::new();
    let mut prev = cfg.state_dim;
    for _ in 0..cfg.policy_layers - 1 {
        m.push_boxed(Box::new(Dense::new(prev, cfg.hidden, Init::HeNormal, rng)));
        m.push_boxed(Box::new(Activation::leaky_relu()));
        prev = cfg.hidden;
    }
    // DDPG-style small final init keeps initial actions near zero, i.e.
    // near-uniform initial impact factors after softmax.
    m.push_boxed(Box::new(Dense::new(
        prev,
        cfg.action_dim,
        Init::FinalLayerSmall,
        rng,
    )));
    m
}

/// Build the value network (2 hidden layers of 256, Table 1).
fn build_value(cfg: &DdpgConfig, rng: &mut Rng64) -> Sequential {
    let mut m = Sequential::new();
    let mut prev = cfg.state_dim + cfg.action_dim;
    for _ in 0..cfg.value_hidden_layers {
        m.push_boxed(Box::new(Dense::new(prev, cfg.hidden, Init::HeNormal, rng)));
        m.push_boxed(Box::new(Activation::leaky_relu()));
        prev = cfg.hidden;
    }
    m.push_boxed(Box::new(Dense::new(prev, 1, Init::FinalLayerSmall, rng)));
    m
}

/// Forward cache of the action head, needed for its backward pass.
struct HeadCache {
    mu: Vec<f32>,
    sig: Vec<f32>, // sigmoid(raw_sigma)
}

impl DdpgAgent {
    /// Create an agent with freshly initialized networks (targets start as
    /// exact copies of the mains, as in DDPG).
    pub fn new(cfg: DdpgConfig) -> Self {
        cfg.validate();
        let mut rng = Rng64::new(cfg.seed);
        let policy = build_policy(&cfg, &mut rng);
        let value = build_value(&cfg, &mut rng);
        let policy_target = policy.clone();
        let value_target = value.clone();
        let buffer = ReplayBuffer::new(cfg.buffer_capacity);
        Self {
            policy_opt: Sgd::new(cfg.policy_lr, 0.0, 0.0),
            value_opt: Sgd::new(cfg.value_lr, 0.0, 0.0),
            policy,
            policy_target,
            value,
            value_target,
            buffer,
            rng,
            noise_scale: 1.0,
            cfg,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &DdpgConfig {
        &self.cfg
    }

    /// Number of Gaussians (clients) the action describes.
    pub fn k(&self) -> usize {
        self.cfg.action_dim / 2
    }

    /// Apply the action head to one raw policy output row.
    fn head_forward(&self, raw: &[f32]) -> (Vec<f32>, HeadCache) {
        let k = self.k();
        let beta = self.cfg.sigma_beta;
        let mut action = vec![0.0f32; 2 * k];
        let mut mu = vec![0.0f32; k];
        let mut sig = vec![0.0f32; k];
        for i in 0..k {
            mu[i] = raw[i].tanh();
            sig[i] = 1.0 / (1.0 + (-raw[k + i]).exp());
            action[i] = mu[i];
            action[k + i] = beta * sig[i] * (mu[i].abs() + SIGMA_FLOOR);
        }
        (action, HeadCache { mu, sig })
    }

    /// Back-propagate `grad_action` through the head, producing the
    /// gradient w.r.t. the raw policy output.
    fn head_backward(&self, cache: &HeadCache, grad_action: &[f32]) -> Vec<f32> {
        let k = self.k();
        let beta = self.cfg.sigma_beta;
        let mut grad_raw = vec![0.0f32; 2 * k];
        for i in 0..k {
            let mu = cache.mu[i];
            let s = cache.sig[i];
            let dmu_draw = 1.0 - mu * mu; // tanh'
            let dsig_draw = s * (1.0 - s); // sigmoid'
            let g_mu = grad_action[i];
            let g_sigma = grad_action[k + i];
            // σ = β·s·(|μ|+ε): both raw_μ (through |μ|) and raw_σ feed σ.
            grad_raw[i] = g_mu * dmu_draw + g_sigma * beta * s * mu.signum() * dmu_draw;
            grad_raw[k + i] = g_sigma * beta * dsig_draw * (mu.abs() + SIGMA_FLOOR);
        }
        grad_raw
    }

    /// Policy decision for one state. With `explore` the raw output is
    /// perturbed by Gaussian noise (Algorithm 2, line 14: `π(s) + ε`).
    /// Returns the `(μ…, σ…)` action vector.
    pub fn act(&mut self, state: &[f32], explore: bool) -> Vec<f32> {
        assert_eq!(
            state.len(),
            self.cfg.state_dim,
            "state length {} != state_dim {}",
            state.len(),
            self.cfg.state_dim
        );
        let x = Tensor::from_vec(&[1, state.len()], state.to_vec());
        let mut raw = self.policy.forward(&x, false).into_vec();
        if explore && self.cfg.exploration_noise > 0.0 {
            let std = self.cfg.exploration_noise * self.noise_scale;
            for v in raw.iter_mut() {
                *v += self.rng.normal_f32(0.0, std);
            }
            self.noise_scale *= self.cfg.exploration_decay;
        }
        let (action, _) = self.head_forward(&raw);
        action
    }

    /// Store a transition.
    pub fn remember(&mut self, exp: Experience) {
        debug_assert_eq!(exp.state.len(), self.cfg.state_dim);
        debug_assert_eq!(exp.action.len(), self.cfg.action_dim);
        debug_assert_eq!(exp.next_state.len(), self.cfg.state_dim);
        assert!(
            exp.reward.is_finite(),
            "non-finite reward {} pushed to replay buffer",
            exp.reward
        );
        self.buffer.push(exp);
    }

    /// Critic estimate `Q(s, a)` (inference mode).
    pub fn q_value(&mut self, state: &[f32], action: &[f32]) -> f32 {
        let mut input = Vec::with_capacity(state.len() + action.len());
        input.extend_from_slice(state);
        input.extend_from_slice(action);
        let x = Tensor::from_vec(&[1, input.len()], input);
        self.value.forward(&x, false).data()[0]
    }

    /// Batched critic forward over (state, action) rows.
    fn q_batch(value: &mut Sequential, states: &Tensor, actions: &Tensor) -> Tensor {
        let b = states.rows();
        let sd = states.cols();
        let ad = actions.cols();
        let mut input = Tensor::zeros(&[b, sd + ad]);
        for r in 0..b {
            input.row_mut(r)[..sd].copy_from_slice(states.row(r));
            input.row_mut(r)[sd..].copy_from_slice(actions.row(r));
        }
        value.forward(&input, true)
    }

    /// TD priorities `|r + γ·Q(s′, a′_targ) − Q(s, a)|` for every stored
    /// experience (Algorithm 1, line 1).
    fn compute_priorities(&mut self) -> Vec<f32> {
        let n = self.buffer.len();
        let sd = self.cfg.state_dim;
        let ad = self.cfg.action_dim;
        let mut states = Tensor::zeros(&[n, sd]);
        let mut actions = Tensor::zeros(&[n, ad]);
        let mut next_states = Tensor::zeros(&[n, sd]);
        let mut rewards = Vec::with_capacity(n);
        for (r, exp) in self.buffer.iter().enumerate() {
            states.row_mut(r).copy_from_slice(&exp.state);
            actions.row_mut(r).copy_from_slice(&exp.action);
            next_states.row_mut(r).copy_from_slice(&exp.next_state);
            rewards.push(exp.reward);
        }
        // a′ from the target policy, Q′ from the target critic.
        let raw_next = self.policy_target.forward(&next_states, false);
        let mut next_actions = Tensor::zeros(&[n, ad]);
        for r in 0..n {
            let (a, _) = self.head_forward(raw_next.row(r));
            next_actions.row_mut(r).copy_from_slice(&a);
        }
        let q_next = Self::q_batch(&mut self.value_target, &next_states, &next_actions);
        let q_cur = Self::q_batch(&mut self.value, &states, &actions);
        (0..n)
            .map(|r| (rewards[r] + self.cfg.gamma * q_next.data()[r] - q_cur.data()[r]).abs())
            .collect()
    }

    /// One training invocation: TD-prioritize the buffer, then perform
    /// `updates_per_round` critic + actor updates with soft target syncs
    /// (Algorithm 1). Returns `None` while the buffer is below `warmup`.
    pub fn train(&mut self) -> Option<TrainStats> {
        if self.buffer.len() < self.cfg.warmup.max(1) {
            return None;
        }
        // Uniform ablation: constant priorities make rank-based sampling
        // equivalent to a random permutation draw.
        let priorities = if self.cfg.prioritized_replay {
            self.compute_priorities()
        } else {
            vec![1.0; self.buffer.len()]
        };
        let mut stats = TrainStats::default();
        for _ in 0..self.cfg.updates_per_round {
            let (value_loss, mean_q) = self.one_update(&priorities);
            stats.value_loss += value_loss;
            stats.mean_q += mean_q;
            stats.updates += 1;
        }
        let n = stats.updates.max(1) as f32;
        stats.value_loss /= n;
        stats.mean_q /= n;
        Some(stats)
    }

    /// Single critic + actor update on one prioritized batch.
    fn one_update(&mut self, priorities: &[f32]) -> (f32, f32) {
        let b = self.cfg.batch_size.min(self.buffer.len());
        let sd = self.cfg.state_dim;
        let ad = self.cfg.action_dim;
        // --- Sample prioritized batch and densify.
        let mut states = Tensor::zeros(&[b, sd]);
        let mut actions = Tensor::zeros(&[b, ad]);
        let mut next_states = Tensor::zeros(&[b, sd]);
        let mut rewards = Vec::with_capacity(b);
        {
            let batch = self.buffer.sample_prioritized(b, priorities, &mut self.rng);
            for (r, exp) in batch.iter().enumerate() {
                states.row_mut(r).copy_from_slice(&exp.state);
                actions.row_mut(r).copy_from_slice(&exp.action);
                next_states.row_mut(r).copy_from_slice(&exp.next_state);
                rewards.push(exp.reward);
            }
        }

        // --- Critic targets: y = r + γ Q′(s′, π′(s′))  (Algorithm 1 l.5).
        let raw_next = self.policy_target.forward(&next_states, false);
        let mut next_actions = Tensor::zeros(&[b, ad]);
        for r in 0..b {
            let (a, _) = self.head_forward(raw_next.row(r));
            next_actions.row_mut(r).copy_from_slice(&a);
        }
        let q_next = Self::q_batch(&mut self.value_target, &next_states, &next_actions);
        let targets = Tensor::from_vec(
            &[b, 1],
            (0..b)
                .map(|r| rewards[r] + self.cfg.gamma * q_next.data()[r])
                .collect(),
        );

        // --- Critic descent on MSE (Algorithm 1 l.6).
        let q = Self::q_batch(&mut self.value, &states, &actions);
        let (value_loss, grad) = feddrl_nn::loss::mse(&q, &targets);
        self.value.zero_grad();
        self.value.backward(&grad);
        self.value_opt.step(&mut self.value);

        // --- Actor ascent on Q(s, π(s)) (Algorithm 1 l.7): fold the ascent
        // sign into the critic's input gradient.
        let raw = self.policy.forward(&states, true);
        let mut pol_actions = Tensor::zeros(&[b, ad]);
        let mut caches = Vec::with_capacity(b);
        for r in 0..b {
            let (a, cache) = self.head_forward(raw.row(r));
            pol_actions.row_mut(r).copy_from_slice(&a);
            caches.push(cache);
        }
        let q_pol = Self::q_batch(&mut self.value, &states, &pol_actions);
        let mean_q = q_pol.mean();
        // dL/dq = −1/b  (maximize mean Q).
        let grad_q = Tensor::full(&[b, 1], -1.0 / b as f32);
        self.value.zero_grad();
        let grad_input = self.value.backward(&grad_q);
        // Critic gradients from this pass are scratch; drop them.
        self.value.zero_grad();
        let mut grad_raw = Tensor::zeros(&[b, ad]);
        for (r, cache) in caches.iter().enumerate().take(b) {
            let g_action = &grad_input.row(r)[sd..];
            let g_raw = self.head_backward(cache, g_action);
            grad_raw.row_mut(r).copy_from_slice(&g_raw);
        }
        self.policy.zero_grad();
        self.policy.backward(&grad_raw);
        self.policy_opt.step(&mut self.policy);

        // --- Soft target sync (Algorithm 1 l.8–9).
        self.soft_update_targets();
        (value_loss, mean_q)
    }

    /// `target ← (1−τ)·target + τ·main` for both network pairs.
    pub fn soft_update_targets(&mut self) {
        let tau = self.cfg.tau;
        for (main, target) in [
            (&self.policy, &mut self.policy_target),
            (&self.value, &mut self.value_target),
        ] {
            let main_flat = main.flat_params();
            let mut tgt_flat = target.flat_params();
            for (t, m) in tgt_flat.iter_mut().zip(main_flat.iter()) {
                *t = (1.0 - tau) * *t + tau * m;
            }
            target.set_flat_params(&tgt_flat);
        }
    }

    /// Flat parameters of the main policy (tests / checkpointing).
    pub fn policy_params(&self) -> Vec<f32> {
        self.policy.flat_params()
    }

    /// Flat parameters of the target policy.
    pub fn target_policy_params(&self) -> Vec<f32> {
        self.policy_target.flat_params()
    }

    /// Flat parameters of the main value network.
    pub fn value_params(&self) -> Vec<f32> {
        self.value.flat_params()
    }

    /// Flat parameters of the target value network.
    pub fn target_value_params(&self) -> Vec<f32> {
        self.value_target.flat_params()
    }

    /// Overwrite all four networks from flat parameter vectors (used by
    /// checkpoint restore).
    ///
    /// # Panics
    /// Panics if any vector length mismatches the config's topology.
    pub fn set_network_params(
        &mut self,
        policy: &[f32],
        policy_target: &[f32],
        value: &[f32],
        value_target: &[f32],
    ) {
        self.policy.set_flat_params(policy);
        self.policy_target.set_flat_params(policy_target);
        self.value.set_flat_params(value);
        self.value_target.set_flat_params(value_target);
    }

    /// Replace the main networks with those of `other` (used when the
    /// two-stage trainer promotes the offline-trained main agent).
    pub fn adopt_networks(&mut self, other: &DdpgAgent) {
        self.policy.set_flat_params(&other.policy.flat_params());
        self.policy_target
            .set_flat_params(&other.policy_target.flat_params());
        self.value.set_flat_params(&other.value.flat_params());
        self.value_target
            .set_flat_params(&other.value_target.flat_params());
    }
}

/// Sample impact factors from the `(μ…, σ…)` action: `α = softmax(z)`,
/// `z_k ~ N(μ_k, σ_k)` (paper Eq. 5).
pub fn sample_impact_factors(mu_sigma: &[f32], rng: &mut Rng64) -> Vec<f32> {
    assert!(
        mu_sigma.len() >= 2 && mu_sigma.len().is_multiple_of(2),
        "action must hold K means + K std-devs"
    );
    let k = mu_sigma.len() / 2;
    let z: Vec<f32> = (0..k)
        .map(|i| rng.normal_f32(mu_sigma[i], mu_sigma[k + i].max(0.0)))
        .collect();
    softmax(&z)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DdpgConfig {
        DdpgConfig {
            state_dim: 6,
            action_dim: 4,
            hidden: 32,
            batch_size: 8,
            warmup: 8,
            updates_per_round: 2,
            policy_lr: 1e-3,
            value_lr: 1e-2,
            ..Default::default()
        }
    }

    #[test]
    fn act_produces_bounded_mu_and_constrained_sigma() {
        let mut agent = DdpgAgent::new(small_cfg());
        let action = agent.act(&[0.1, -0.2, 0.3, 0.0, 1.0, -1.0], false);
        assert_eq!(action.len(), 4);
        let beta = agent.config().sigma_beta;
        for i in 0..2 {
            let mu = action[i];
            let sigma = action[2 + i];
            assert!((-1.0..=1.0).contains(&mu), "mu out of tanh range: {mu}");
            assert!(sigma >= 0.0);
            assert!(
                sigma <= beta * (mu.abs() + SIGMA_FLOOR) + 1e-6,
                "Eq.6 violated: sigma {sigma} > beta*|mu| {}",
                beta * mu.abs()
            );
        }
    }

    #[test]
    fn exploration_noise_changes_actions() {
        let mut agent = DdpgAgent::new(small_cfg());
        let s = [0.5; 6];
        let quiet = agent.act(&s, false);
        let quiet2 = agent.act(&s, false);
        assert_eq!(quiet, quiet2, "deterministic act must be repeatable");
        let noisy = agent.act(&s, true);
        assert_ne!(quiet, noisy, "exploration left the action unchanged");
    }

    #[test]
    fn head_backward_matches_finite_difference() {
        let agent = DdpgAgent::new(small_cfg());
        let raw = vec![0.3f32, -0.7, 0.2, 0.9];
        let (_, cache) = agent.head_forward(&raw);
        // Random seed gradient on the action.
        let g_action = vec![0.7f32, -0.4, 1.3, 0.2];
        let grad = agent.head_backward(&cache, &g_action);
        let eps = 1e-3f32;
        for i in 0..raw.len() {
            let mut rp = raw.clone();
            rp[i] += eps;
            let mut rm = raw.clone();
            rm[i] -= eps;
            let (ap, _) = agent.head_forward(&rp);
            let (am, _) = agent.head_forward(&rm);
            let fp: f32 = ap.iter().zip(&g_action).map(|(a, g)| a * g).sum();
            let fm: f32 = am.iter().zip(&g_action).map(|(a, g)| a * g).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 2e-3,
                "head grad mismatch at {i}: {numeric} vs {}",
                grad[i]
            );
        }
    }

    #[test]
    fn train_requires_warmup() {
        let mut agent = DdpgAgent::new(small_cfg());
        assert!(agent.train().is_none());
        for i in 0..8 {
            agent.remember(Experience {
                state: vec![i as f32 / 8.0; 6],
                action: vec![0.0; 4],
                reward: -1.0,
                next_state: vec![(i + 1) as f32 / 8.0; 6],
            });
        }
        let stats = agent.train().expect("buffer warmed up");
        assert_eq!(stats.updates, 2);
        assert!(stats.value_loss.is_finite());
    }

    #[test]
    fn critic_learns_constant_reward_value() {
        // With reward always c and gamma-discounting, Q should approach
        // c/(1−γ) at convergence; in a short run it must at least move
        // toward positive values from its near-zero init.
        let mut cfg = small_cfg();
        cfg.gamma = 0.0; // makes the fixed point exactly the reward
        cfg.updates_per_round = 50;
        let mut agent = DdpgAgent::new(cfg);
        let mut rng = Rng64::new(5);
        for _ in 0..64 {
            let s: Vec<f32> = (0..6).map(|_| rng.uniform(-1.0, 1.0)).collect();
            let a: Vec<f32> = (0..4).map(|_| rng.uniform(-0.5, 0.5)).collect();
            agent.remember(Experience {
                state: s.clone(),
                action: a,
                reward: 2.0,
                next_state: s,
            });
        }
        for _ in 0..40 {
            agent.train().unwrap();
        }
        let q = agent.q_value(&[0.0; 6], &[0.0; 4]);
        assert!(
            (q - 2.0).abs() < 0.5,
            "critic failed to learn constant reward: q = {q}"
        );
    }

    #[test]
    fn policy_moves_toward_higher_q_actions() {
        // Reward = mean of the action's μ components → the policy should
        // push μ upward once the critic has learned the pattern.
        let mut cfg = small_cfg();
        cfg.gamma = 0.0;
        cfg.updates_per_round = 30;
        cfg.exploration_noise = 0.3;
        let mut agent = DdpgAgent::new(cfg);
        let state = vec![0.2f32; 6];
        let mu_before: f32 = agent.act(&state, false)[..2].iter().sum::<f32>() / 2.0;
        let mut rng = Rng64::new(9);
        for _ in 0..200 {
            let mut action = agent.act(&state, true);
            // Clamp into the head's reachable set.
            for v in action.iter_mut().take(2) {
                *v = v.clamp(-0.999, 0.999);
            }
            let reward = (action[0] + action[1]) / 2.0 + rng.normal_f32(0.0, 0.01);
            agent.remember(Experience {
                state: state.clone(),
                action,
                reward,
                next_state: state.clone(),
            });
        }
        for _ in 0..30 {
            agent.train().unwrap();
        }
        let mu_after: f32 = agent.act(&state, false)[..2].iter().sum::<f32>() / 2.0;
        assert!(
            mu_after > mu_before + 0.05,
            "policy did not ascend: {mu_before} -> {mu_after}"
        );
    }

    #[test]
    fn soft_update_moves_target_by_tau() {
        let mut agent = DdpgAgent::new(small_cfg());
        let before_main = agent.policy_params();
        // Perturb the main policy, then soft-update.
        let mut perturbed = before_main.clone();
        for v in perturbed.iter_mut() {
            *v += 1.0;
        }
        agent.policy.set_flat_params(&perturbed);
        let target_before = agent.target_policy_params();
        agent.soft_update_targets();
        let target_after = agent.target_policy_params();
        let tau = agent.config().tau;
        for ((tb, ta), m) in target_before
            .iter()
            .zip(target_after.iter())
            .zip(perturbed.iter())
        {
            let expected = (1.0 - tau) * tb + tau * m;
            assert!((ta - expected).abs() < 1e-5);
        }
    }

    #[test]
    fn impact_factors_on_simplex_and_respond_to_mu() {
        let mut rng = Rng64::new(11);
        // Client 0 has much higher mean → should usually dominate.
        let action = vec![0.9, -0.9, -0.9, 0.001, 0.001, 0.001];
        let mut wins = 0;
        for _ in 0..200 {
            let alpha = sample_impact_factors(&action, &mut rng);
            assert_eq!(alpha.len(), 3);
            assert!((alpha.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert!(alpha.iter().all(|&a| (0.0..=1.0).contains(&a)));
            if alpha[0] > alpha[1] && alpha[0] > alpha[2] {
                wins += 1;
            }
        }
        assert!(wins > 190, "high-mu client won only {wins}/200 draws");
    }

    #[test]
    fn adopt_networks_copies_parameters() {
        let mut a = DdpgAgent::new(small_cfg());
        let b = DdpgAgent::new(DdpgConfig {
            seed: 999,
            ..small_cfg()
        });
        assert_ne!(a.policy_params(), b.policy_params());
        a.adopt_networks(&b);
        assert_eq!(a.policy_params(), b.policy_params());
    }

    #[test]
    #[should_panic(expected = "non-finite reward")]
    fn rejects_nan_reward() {
        let mut agent = DdpgAgent::new(small_cfg());
        agent.remember(Experience {
            state: vec![0.0; 6],
            action: vec![0.0; 4],
            reward: f32::NAN,
            next_state: vec![0.0; 6],
        });
    }
}
