//! Agent checkpointing.
//!
//! A [`AgentCheckpoint`] captures everything needed to resume or deploy a
//! trained agent: the configuration, all four networks' flat parameters,
//! and (optionally) the replay buffer. Stored as JSON so checkpoints are
//! portable and diffable.

use crate::buffer::ReplayBuffer;
use crate::config::DdpgConfig;
use crate::ddpg::DdpgAgent;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Serialized agent state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentCheckpoint {
    /// Hyper-parameters (also defines the network shapes).
    pub config: DdpgConfig,
    /// Main policy flat parameters.
    pub policy: Vec<f32>,
    /// Target policy flat parameters.
    pub policy_target: Vec<f32>,
    /// Main value flat parameters.
    pub value: Vec<f32>,
    /// Target value flat parameters.
    pub value_target: Vec<f32>,
    /// Replay buffer contents (`None` for deploy-only checkpoints).
    pub buffer: Option<ReplayBuffer>,
}

impl AgentCheckpoint {
    /// Capture an agent. `with_buffer` controls whether the experience
    /// buffer is included (it dominates checkpoint size).
    pub fn capture(agent: &DdpgAgent, with_buffer: bool) -> Self {
        Self {
            config: agent.config().clone(),
            policy: agent.policy_params(),
            policy_target: agent.target_policy_params(),
            value: agent.value_params(),
            value_target: agent.target_value_params(),
            buffer: with_buffer.then(|| agent.buffer.clone()),
        }
    }

    /// Rebuild an agent from the checkpoint.
    pub fn restore(&self) -> DdpgAgent {
        let mut agent = DdpgAgent::new(self.config.clone());
        agent.set_network_params(
            &self.policy,
            &self.policy_target,
            &self.value,
            &self.value_target,
        );
        if let Some(buffer) = &self.buffer {
            agent.buffer = buffer.clone();
        }
        agent
    }

    /// Write to a JSON file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string(self).expect("checkpoint serialization");
        std::fs::write(path, json)
    }

    /// Read from a JSON file.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Experience;

    fn trained_agent() -> DdpgAgent {
        let cfg = DdpgConfig {
            state_dim: 6,
            action_dim: 4,
            hidden: 16,
            batch_size: 4,
            warmup: 4,
            updates_per_round: 2,
            ..Default::default()
        };
        let mut agent = DdpgAgent::new(cfg);
        for i in 0..6 {
            agent.remember(Experience {
                state: vec![i as f32; 6],
                action: vec![0.1; 4],
                reward: -1.0,
                next_state: vec![i as f32 + 1.0; 6],
            });
        }
        agent.train();
        agent
    }

    #[test]
    fn roundtrip_preserves_decisions() {
        let mut agent = trained_agent();
        let ckpt = AgentCheckpoint::capture(&agent, true);
        let mut restored = ckpt.restore();
        let state = vec![0.3f32; 6];
        assert_eq!(agent.act(&state, false), restored.act(&state, false));
        assert_eq!(restored.buffer.len(), agent.buffer.len());
    }

    #[test]
    fn deploy_checkpoint_drops_buffer() {
        let agent = trained_agent();
        let ckpt = AgentCheckpoint::capture(&agent, false);
        assert!(ckpt.buffer.is_none());
        let restored = ckpt.restore();
        assert_eq!(restored.buffer.len(), 0);
        assert_eq!(restored.policy_params(), agent.policy_params());
    }

    #[test]
    fn disk_roundtrip() {
        let agent = trained_agent();
        let ckpt = AgentCheckpoint::capture(&agent, true);
        let dir = std::env::temp_dir().join("feddrl_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("agent.json");
        ckpt.save(&path).unwrap();
        let loaded = AgentCheckpoint::load(&path).unwrap();
        assert_eq!(loaded.policy, ckpt.policy);
        assert_eq!(loaded.config, ckpt.config);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_validates_shapes() {
        let agent = trained_agent();
        let mut ckpt = AgentCheckpoint::capture(&agent, false);
        ckpt.policy.pop();
        let result = std::panic::catch_unwind(|| ckpt.restore());
        assert!(result.is_err(), "truncated checkpoint must be rejected");
    }
}
