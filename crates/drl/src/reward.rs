//! The FedDRL reward (paper Eq. 7).
//!
//! The paper prints `r_t = avg(l_b) + (max(l_b) − min(l_b))` and states both
//! terms are to be *minimized* ("1) Improving the global model's accuracy …
//! 2) Balancing the global model's performance"). A reward that the agent
//! maximizes must therefore be the negative of that sum; we implement
//! `r = −(avg + λ·(max − min))` with λ = 1 by default and expose λ for the
//! ablation bench (DESIGN.md §3.1 documents this sign reading).

/// Compute the reward from the global model's inference losses on the
/// participating clients' datasets (`l_before` of the round *after* the
/// aggregation being scored).
///
/// # Panics
/// Panics on an empty slice or non-finite losses.
pub fn reward_from_losses(losses: &[f32], lambda: f32) -> f32 {
    assert!(!losses.is_empty(), "reward needs at least one client loss");
    let mut sum = 0.0f64;
    let mut max = f32::NEG_INFINITY;
    let mut min = f32::INFINITY;
    for (i, &l) in losses.iter().enumerate() {
        assert!(l.is_finite(), "client loss {i} is not finite: {l}");
        sum += l as f64;
        max = max.max(l);
        min = min.min(l);
    }
    let avg = (sum / losses.len() as f64) as f32;
    -(avg + lambda * (max - min))
}

/// Decomposed reward terms, for diagnostics and the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardTerms {
    /// Mean loss across clients (accuracy objective).
    pub avg_loss: f32,
    /// Max − min loss across clients (fairness objective).
    pub loss_gap: f32,
}

/// Compute both reward terms without combining them.
pub fn reward_terms(losses: &[f32]) -> RewardTerms {
    assert!(!losses.is_empty(), "reward needs at least one client loss");
    let avg = losses.iter().sum::<f32>() / losses.len() as f32;
    let max = losses.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let min = losses.iter().copied().fold(f32::INFINITY, f32::min);
    RewardTerms {
        avg_loss: avg,
        loss_gap: max - min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reward_is_negative_of_eq7() {
        // avg = 2, gap = 2 → r = −4.
        let r = reward_from_losses(&[1.0, 2.0, 3.0], 1.0);
        assert!((r + 4.0).abs() < 1e-6);
    }

    #[test]
    fn lambda_scales_fairness_term() {
        let balanced = reward_from_losses(&[2.0, 2.0, 2.0], 5.0);
        let skewed = reward_from_losses(&[1.0, 2.0, 3.0], 5.0);
        assert!((balanced + 2.0).abs() < 1e-6, "gap term should vanish");
        assert!((skewed + 12.0).abs() < 1e-6); // −(2 + 5·2)
    }

    #[test]
    fn lower_losses_give_higher_reward() {
        let good = reward_from_losses(&[0.5, 0.6], 1.0);
        let bad = reward_from_losses(&[2.0, 2.1], 1.0);
        assert!(good > bad);
    }

    #[test]
    fn fairer_outcome_wins_at_equal_average() {
        let fair = reward_from_losses(&[1.0, 1.0], 1.0);
        let unfair = reward_from_losses(&[0.0, 2.0], 1.0);
        assert!(fair > unfair);
    }

    #[test]
    fn terms_decompose() {
        let t = reward_terms(&[1.0, 3.0]);
        assert_eq!(t.avg_loss, 2.0);
        assert_eq!(t.loss_gap, 2.0);
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn rejects_nan_loss() {
        let _ = reward_from_losses(&[1.0, f32::NAN], 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = reward_from_losses(&[], 1.0);
    }
}
