//! Structured sub-model masks for adaptive dropout.
//!
//! "Efficient Federated Learning with Heterogeneous Data and Adaptive
//! Dropout" (arXiv:2507.10430) has pressured devices train a *masked
//! sub-model* — whole hidden units removed — whose update still aggregates
//! into the full model. [`StructuredMask`] is that mask over a
//! [`Sequential`]'s flat parameter vector: for each masked hidden unit it
//! covers the unit's incoming weight column, its bias, and its outgoing
//! weight row in the next dense layer, so zeroing the masked positions is
//! *exactly* equivalent to deleting the unit from the network (its
//! activation and every gradient through it vanish identically).
//!
//! Masks are structured per maskable layer (a dense layer followed — up to
//! parameter-free layers — by another dense consuming its features), drawn
//! from a caller-provided RNG stream so per-`(round, client)` masks
//! reproduce bit-for-bit. A ratio-1 mask keeps everything and is
//! recognized by [`StructuredMask::is_full`], letting callers skip the
//! masked code path entirely — the byte-identity guarantee the
//! fleet-dynamics property suite pins.

use crate::model::Sequential;
use crate::rng::Rng64;

/// A keep/drop mask over a model's flat parameter vector, aligned with
/// [`Sequential::flat_params`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuredMask {
    keep: Vec<bool>,
    kept: usize,
}

/// A dense layer's placement inside the flat parameter vector.
struct DenseSeg {
    /// Flat offset of the layer's weight matrix (bias follows it).
    offset: usize,
    in_dim: usize,
    out_dim: usize,
    /// Whether only parameter-free layers sit between this dense and the
    /// previous one (i.e. the previous dense's features feed it directly).
    directly_fed: bool,
}

fn dense_segments(model: &Sequential) -> Vec<DenseSeg> {
    let mut segs = Vec::new();
    let mut offset = 0;
    let mut gap_params = 0usize;
    for layer in model.layers() {
        if let Some((in_dim, out_dim)) = layer.io_dims() {
            segs.push(DenseSeg {
                offset,
                in_dim,
                out_dim,
                directly_fed: gap_params == 0,
            });
            gap_params = 0;
        } else {
            gap_params += layer.param_count();
        }
        offset += layer.param_count();
    }
    segs
}

impl StructuredMask {
    /// The all-keep mask over `param_count` positions.
    pub fn full(param_count: usize) -> Self {
        Self {
            keep: vec![true; param_count],
            kept: param_count,
        }
    }

    /// A mask from an explicit per-position keep vector. Escape hatch for
    /// custom masking schemes and precise aggregation tests;
    /// [`StructuredMask::derive`] is the structured whole-unit path.
    pub fn from_keep(keep: Vec<bool>) -> Self {
        let kept = keep.iter().filter(|&&k| k).count();
        Self { keep, kept }
    }

    /// Draw a mask keeping `keep_ratio` of each maskable layer's hidden
    /// units (at least one per layer), consuming `rng` deterministically.
    ///
    /// Maskable units are the outputs of a dense layer that directly feeds
    /// another dense layer (only parameter-free layers — activations,
    /// element-wise dropout — in between, and matching dimensions). Models
    /// with no such pair (e.g. convolutional stacks, single-layer heads)
    /// yield the full mask. `keep_ratio = 1` is the full mask by
    /// construction, bit-identical to untrained-through code paths.
    ///
    /// # Panics
    /// Panics unless `keep_ratio` is in `(0, 1]`.
    pub fn derive(model: &Sequential, keep_ratio: f64, rng: &mut Rng64) -> Self {
        assert!(
            keep_ratio.is_finite() && 0.0 < keep_ratio && keep_ratio <= 1.0,
            "keep_ratio must be in (0, 1], got {keep_ratio}"
        );
        let mut mask = Self::full(model.param_count());
        let segs = dense_segments(model);
        for pair in segs.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if !(b.directly_fed && a.out_dim == b.in_dim) {
                continue;
            }
            let keep_units = ((a.out_dim as f64 * keep_ratio).ceil() as usize).clamp(1, a.out_dim);
            let drop_units = a.out_dim - keep_units;
            if drop_units == 0 {
                continue;
            }
            for j in rng.sample_indices(a.out_dim, drop_units) {
                // Incoming column j of a's weights [in, out] (row-major).
                for i in 0..a.in_dim {
                    mask.drop(a.offset + i * a.out_dim + j);
                }
                // a's bias j.
                mask.drop(a.offset + a.in_dim * a.out_dim + j);
                // Outgoing row j of b's weights [in, out].
                for k in 0..b.out_dim {
                    mask.drop(b.offset + j * b.out_dim + k);
                }
            }
        }
        mask
    }

    fn drop(&mut self, p: usize) {
        if std::mem::replace(&mut self.keep[p], false) {
            self.kept -= 1;
        }
    }

    /// Whether position `p` of the flat vector is kept (trained and
    /// aggregated).
    pub fn keeps(&self, p: usize) -> bool {
        self.keep[p]
    }

    /// Number of positions the mask covers (the model's parameter count).
    pub fn len(&self) -> usize {
        self.keep.len()
    }

    /// Whether the mask covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.keep.is_empty()
    }

    /// Number of kept positions.
    pub fn kept(&self) -> usize {
        self.kept
    }

    /// Fraction of parameters kept, in `(0, 1]` (1 on an empty mask).
    pub fn keep_fraction(&self) -> f64 {
        if self.keep.is_empty() {
            1.0
        } else {
            self.kept as f64 / self.keep.len() as f64
        }
    }

    /// Whether every position is kept — the fast path that makes ratio-1
    /// masking byte-identical to no masking at all.
    pub fn is_full(&self) -> bool {
        self.kept == self.keep.len()
    }

    /// Zero the masked positions of `flat` (deleting the masked units from
    /// a parameter vector of matching layout).
    ///
    /// # Panics
    /// Panics if `flat` length mismatches the mask.
    pub fn apply(&self, flat: &mut [f32]) {
        assert_eq!(flat.len(), self.keep.len(), "mask/vector length mismatch");
        for (w, &k) in flat.iter_mut().zip(self.keep.iter()) {
            if !k {
                *w = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::{Activation, Dense};
    use crate::tensor::Tensor;

    fn mlp(rng: &mut Rng64) -> Sequential {
        Sequential::new()
            .push(Dense::new(6, 10, Init::HeNormal, rng))
            .push(Activation::leaky_relu())
            .push(Dense::new(10, 4, Init::XavierUniform, rng))
    }

    #[test]
    fn ratio_one_is_the_full_mask() {
        let mut rng = Rng64::new(1);
        let model = mlp(&mut rng);
        let mask = StructuredMask::derive(&model, 1.0, &mut rng);
        assert!(mask.is_full());
        assert_eq!(mask.keep_fraction(), 1.0);
        assert_eq!(mask.kept(), model.param_count());
        let mut flat = model.flat_params();
        let before = flat.clone();
        mask.apply(&mut flat);
        assert_eq!(flat, before, "full mask must not touch a single byte");
    }

    #[test]
    fn derivation_is_deterministic_and_ratio_monotone() {
        let mut rng = Rng64::new(2);
        let model = mlp(&mut rng);
        let m1 = StructuredMask::derive(&model, 0.5, &mut Rng64::new(77));
        let m2 = StructuredMask::derive(&model, 0.5, &mut Rng64::new(77));
        assert_eq!(m1, m2);
        let mut prev = 0;
        for ratio in [0.2, 0.5, 0.8, 1.0] {
            let kept = StructuredMask::derive(&model, ratio, &mut Rng64::new(9)).kept();
            assert!(kept >= prev, "kept count not monotone in ratio");
            prev = kept;
        }
        assert_eq!(prev, model.param_count());
    }

    #[test]
    fn masked_positions_form_whole_units() {
        let mut rng = Rng64::new(3);
        let model = mlp(&mut rng);
        let mask = StructuredMask::derive(&model, 0.5, &mut Rng64::new(5));
        assert!(!mask.is_full());
        // Layout: W1 [6,10], b1 [10], W2 [10,4], b2 [4].
        let (w1, b1, w2) = (0, 60, 70);
        let masked_units: Vec<usize> = (0..10).filter(|&j| !mask.keeps(b1 + j)).collect();
        assert_eq!(masked_units.len(), 5, "ratio 0.5 over 10 units");
        for j in 0..10 {
            let dropped = masked_units.contains(&j);
            for i in 0..6 {
                assert_eq!(mask.keeps(w1 + i * 10 + j), !dropped, "col {j} row {i}");
            }
            assert_eq!(mask.keeps(b1 + j), !dropped, "bias {j}");
            for k in 0..4 {
                assert_eq!(mask.keeps(w2 + j * 4 + k), !dropped, "row {j} col {k}");
            }
        }
        // The output layer's biases are never maskable.
        for k in 0..4 {
            assert!(mask.keeps(70 + 40 + k));
        }
        assert_eq!(
            mask.kept(),
            model.param_count() - 5 * (6 + 1 + 4),
            "each masked unit must cost exactly in+1+out scalars"
        );
    }

    #[test]
    fn applying_the_mask_deletes_the_units_from_the_network() {
        // Forward of the masked model must be identical to a model whose
        // masked hidden activations are forced to zero: structural removal,
        // not mere perturbation.
        let mut rng = Rng64::new(4);
        let model = mlp(&mut rng);
        let mask = StructuredMask::derive(&model, 0.4, &mut Rng64::new(11));
        let mut masked = model.clone();
        let mut flat = masked.flat_params();
        mask.apply(&mut flat);
        masked.set_flat_params(&flat);
        let x = Tensor::randn(&[3, 6], 0.0, 1.0, &mut rng);
        let y = masked.forward(&x, false);
        // Recompute manually: masked units contribute nothing.
        let b1 = 60;
        let live: Vec<usize> = (0..10).filter(|&j| mask.keeps(b1 + j)).collect();
        assert!(!live.is_empty() && live.len() < 10);
        let w = masked.flat_params();
        for r in 0..3 {
            for k in 0..4 {
                let mut acc = w[70 + 40 + k]; // output bias
                for &j in &live {
                    let mut h = w[b1 + j];
                    for i in 0..6 {
                        h += x.at(r, i) * w[i * 10 + j];
                    }
                    // leaky_relu as used by Activation::leaky_relu()
                    let h = if h > 0.0 { h } else { 0.01 * h };
                    acc += h * w[70 + j * 4 + k];
                }
                assert!(
                    (y.at(r, k) - acc).abs() < 1e-5,
                    "masked forward diverged at ({r}, {k})"
                );
            }
        }
    }

    #[test]
    fn single_dense_models_have_no_maskable_units() {
        let mut rng = Rng64::new(6);
        let model = Sequential::new().push(Dense::new(8, 3, Init::HeNormal, &mut rng));
        let mask = StructuredMask::derive(&model, 0.2, &mut rng);
        assert!(mask.is_full(), "output layer must never be masked");
    }

    #[test]
    fn tiny_ratio_keeps_at_least_one_unit_per_layer() {
        let mut rng = Rng64::new(7);
        let model = mlp(&mut rng);
        let mask = StructuredMask::derive(&model, 0.01, &mut rng);
        let live = (0..10).filter(|&j| mask.keeps(60 + j)).count();
        assert_eq!(live, 1, "floor of one unit per maskable layer");
    }

    #[test]
    #[should_panic(expected = "keep_ratio")]
    fn rejects_zero_ratio() {
        let mut rng = Rng64::new(8);
        let model = mlp(&mut rng);
        let _ = StructuredMask::derive(&model, 0.0, &mut rng);
    }
}
