//! Model zoo: the client architectures named in the paper plus the
//! scaled-down MLP profiles used by the default experiment configuration.
//!
//! Models are described by a serializable [`ModelSpec`] and materialized
//! with [`ModelSpec::build`] from a seed, so a federated run can reconstruct
//! bit-identical client models anywhere. The spec is also what gets written
//! next to checkpoints.

use crate::init::Init;
use crate::layers::{Activation, ActivationKind, Conv2d, Dense, Dropout, MaxPool2d};
use crate::model::Sequential;
use crate::rng::Rng64;
use serde::{Deserialize, Serialize};

/// Declarative model description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Multi-layer perceptron with LeakyReLU hidden activations. The
    /// default client model for the synthetic (scaled-down) experiments.
    Mlp {
        /// Input feature dimensionality.
        in_dim: usize,
        /// Hidden layer widths, in order.
        hidden: Vec<usize>,
        /// Number of output classes.
        out_dim: usize,
    },
    /// The simple CNN used for MNIST/Fashion-MNIST in the paper (after
    /// \[25\]): two 5×5 conv + 2×2 maxpool blocks, then a 512-unit dense
    /// head. Input is `1×28×28`.
    CnnMnist {
        /// Number of output classes.
        num_classes: usize,
    },
    /// VGG-11 adapted to 32×32 inputs as is standard in federated CIFAR
    /// work ([18, 22]): 8 conv layers with pooling, then a 512→512→classes
    /// classifier with dropout.
    Vgg11 {
        /// Number of output classes.
        num_classes: usize,
    },
}

impl ModelSpec {
    /// Instantiate the model with weights drawn from `seed`.
    pub fn build(&self, seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        match self {
            ModelSpec::Mlp {
                in_dim,
                hidden,
                out_dim,
            } => build_mlp(*in_dim, hidden, *out_dim, &mut rng),
            ModelSpec::CnnMnist { num_classes } => build_cnn_mnist(*num_classes, &mut rng),
            ModelSpec::Vgg11 { num_classes } => build_vgg11(*num_classes, &mut rng),
        }
    }

    /// Input feature dimension expected by the model.
    pub fn in_dim(&self) -> usize {
        match self {
            ModelSpec::Mlp { in_dim, .. } => *in_dim,
            ModelSpec::CnnMnist { .. } => 28 * 28,
            ModelSpec::Vgg11 { .. } => 3 * 32 * 32,
        }
    }

    /// Number of output classes.
    pub fn out_dim(&self) -> usize {
        match self {
            ModelSpec::Mlp { out_dim, .. } => *out_dim,
            ModelSpec::CnnMnist { num_classes } | ModelSpec::Vgg11 { num_classes } => *num_classes,
        }
    }
}

/// Build an MLP: `in → hidden… → out` with LeakyReLU between layers.
pub fn build_mlp(in_dim: usize, hidden: &[usize], out_dim: usize, rng: &mut Rng64) -> Sequential {
    let mut model = Sequential::new();
    let mut prev = in_dim;
    for &h in hidden {
        model.push_boxed(Box::new(Dense::new(prev, h, Init::HeNormal, rng)));
        model.push_boxed(Box::new(Activation::new(ActivationKind::LeakyRelu(0.01))));
        prev = h;
    }
    model.push_boxed(Box::new(Dense::new(
        prev,
        out_dim,
        Init::XavierUniform,
        rng,
    )));
    model
}

/// Simple CNN for 28×28 grayscale input (paper's MNIST/F-MNIST model).
fn build_cnn_mnist(num_classes: usize, rng: &mut Rng64) -> Sequential {
    let mut m = Sequential::new();
    // conv1: 1×28×28 → 32×28×28, pool → 32×14×14
    let c1 = Conv2d::new(1, 28, 28, 32, 5, 1, 2, rng);
    m.push_boxed(Box::new(c1));
    m.push_boxed(Box::new(Activation::relu()));
    m.push_boxed(Box::new(MaxPool2d::new(32, 28, 28, 2, 2)));
    // conv2: 32×14×14 → 64×14×14, pool → 64×7×7
    let c2 = Conv2d::new(32, 14, 14, 64, 5, 1, 2, rng);
    m.push_boxed(Box::new(c2));
    m.push_boxed(Box::new(Activation::relu()));
    m.push_boxed(Box::new(MaxPool2d::new(64, 14, 14, 2, 2)));
    // classifier
    m.push_boxed(Box::new(Dense::new(64 * 7 * 7, 512, Init::HeNormal, rng)));
    m.push_boxed(Box::new(Activation::relu()));
    m.push_boxed(Box::new(Dense::new(
        512,
        num_classes,
        Init::XavierUniform,
        rng,
    )));
    m
}

/// VGG-11 for 3×32×32 input, CIFAR-adapted classifier head.
fn build_vgg11(num_classes: usize, rng: &mut Rng64) -> Sequential {
    let mut m = Sequential::new();
    let mut c = 3usize;
    let mut hw = 32usize;
    // (out_channels, pool_after) per VGG-A configuration.
    let cfg: [(usize, bool); 8] = [
        (64, true),
        (128, true),
        (256, false),
        (256, true),
        (512, false),
        (512, true),
        (512, false),
        (512, true),
    ];
    for (out_c, pool) in cfg {
        m.push_boxed(Box::new(Conv2d::new(c, hw, hw, out_c, 3, 1, 1, rng)));
        m.push_boxed(Box::new(Activation::relu()));
        c = out_c;
        if pool {
            m.push_boxed(Box::new(MaxPool2d::new(c, hw, hw, 2, 2)));
            hw /= 2;
        }
    }
    debug_assert_eq!(hw, 1, "VGG-11 trunk should reduce 32x32 to 1x1");
    m.push_boxed(Box::new(Dense::new(c, 512, Init::HeNormal, rng)));
    m.push_boxed(Box::new(Activation::relu()));
    m.push_boxed(Box::new(Dropout::new(0.5, rng.derive(0xD0))));
    m.push_boxed(Box::new(Dense::new(512, 512, Init::HeNormal, rng)));
    m.push_boxed(Box::new(Activation::relu()));
    m.push_boxed(Box::new(Dropout::new(0.5, rng.derive(0xD1))));
    m.push_boxed(Box::new(Dense::new(
        512,
        num_classes,
        Init::XavierUniform,
        rng,
    )));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn mlp_shapes_and_determinism() {
        let spec = ModelSpec::Mlp {
            in_dim: 16,
            hidden: vec![32, 32],
            out_dim: 10,
        };
        let mut a = spec.build(7);
        let b = spec.build(7);
        assert_eq!(a.flat_params(), b.flat_params());
        let mut rng = Rng64::new(1);
        let x = Tensor::randn(&[4, 16], 0.0, 1.0, &mut rng);
        let y = a.forward(&x, false);
        assert_eq!(y.shape(), &[4, 10]);
        // in*32 + 32 + 32*32 + 32 + 32*10 + 10
        assert_eq!(a.param_count(), 16 * 32 + 32 + 32 * 32 + 32 + 32 * 10 + 10);
    }

    #[test]
    fn cnn_mnist_forward_shape() {
        let spec = ModelSpec::CnnMnist { num_classes: 10 };
        let mut model = spec.build(3);
        let mut rng = Rng64::new(2);
        let x = Tensor::randn(&[2, 28 * 28], 0.0, 1.0, &mut rng);
        let y = model.forward(&x, false);
        assert_eq!(y.shape(), &[2, 10]);
        // Parameter count of the standard 32/64 5x5 CNN with 512 head:
        let expected =
            (32 * 25 + 32) + (64 * 32 * 25 + 64) + (64 * 7 * 7 * 512 + 512) + (512 * 10 + 10);
        assert_eq!(model.param_count(), expected);
    }

    #[test]
    fn vgg11_forward_shape_and_size() {
        let spec = ModelSpec::Vgg11 { num_classes: 100 };
        let mut model = spec.build(5);
        let mut rng = Rng64::new(4);
        let x = Tensor::randn(&[1, 3 * 32 * 32], 0.0, 0.1, &mut rng);
        let y = model.forward(&x, false);
        assert_eq!(y.shape(), &[1, 100]);
        // VGG-11 conv trunk + 512-512 head is ~9.5M params (CIFAR variant).
        let p = model.param_count();
        assert!(
            (9_000_000..10_500_000).contains(&p),
            "unexpected VGG-11 parameter count {p}"
        );
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = ModelSpec::Vgg11 { num_classes: 100 };
        let json = serde_json::to_string(&spec).unwrap();
        let back: ModelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        assert_eq!(back.in_dim(), 3072);
        assert_eq!(back.out_dim(), 100);
    }

    #[test]
    fn different_seeds_give_different_weights() {
        let spec = ModelSpec::Mlp {
            in_dim: 4,
            hidden: vec![8],
            out_dim: 2,
        };
        assert_ne!(spec.build(1).flat_params(), spec.build(2).flat_params());
    }
}
