//! Optimizers.
//!
//! The paper trains clients with plain SGD (lr 0.01) and the DDPG nets with
//! SGD-style updates at lr 1e-4/1e-3; [`Sgd`] covers both, with optional
//! classical momentum and decoupled L2 weight decay.

use crate::model::Sequential;
use crate::tensor::Tensor;

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// Velocity buffers are allocated lazily on the first step and keyed by
/// (layer, param) position, so the optimizer must be used with a single
/// model topology for its lifetime.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Vec<Tensor>>,
}

impl Sgd {
    /// Create an optimizer. `momentum` and `weight_decay` of `0.0` disable
    /// those terms.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0,1), got {momentum}"
        );
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replace the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        self.lr = lr;
    }

    /// Apply one update using the gradients accumulated in `model`.
    ///
    /// Gradient-ascent callers (the DDPG policy update) should negate their
    /// objective when computing gradients, or use [`Sgd::step_scaled`] with
    /// `-1.0`.
    pub fn step(&mut self, model: &mut Sequential) {
        self.step_scaled(model, 1.0);
    }

    /// Like [`Sgd::step`] but multiplies every gradient by `grad_scale`
    /// before the update (`-1.0` turns descent into ascent).
    pub fn step_scaled(&mut self, model: &mut Sequential, grad_scale: f32) {
        let use_momentum = self.momentum > 0.0;
        for (li, layer) in model.layers_mut().iter_mut().enumerate() {
            if use_momentum && self.velocity.len() <= li {
                self.velocity.push(
                    layer
                        .grads()
                        .iter()
                        .map(|g| Tensor::zeros(g.shape()))
                        .collect(),
                );
            }
            let grads: Vec<Tensor> = layer.grads().iter().map(|g| (*g).clone()).collect();
            for (pi, (p, g)) in layer.params_mut().into_iter().zip(grads).enumerate() {
                if use_momentum {
                    let v = &mut self.velocity[li][pi];
                    debug_assert_eq!(v.shape(), g.shape(), "velocity shape drift");
                    // v ← m·v + g ; p ← p − lr·(scale·v + wd·p)
                    v.scale(self.momentum);
                    v.add_assign(&g);
                    for (pv, vv) in p.data_mut().iter_mut().zip(v.data().iter()) {
                        *pv -= self.lr * (grad_scale * vv + self.weight_decay * *pv);
                    }
                } else {
                    for (pv, gv) in p.data_mut().iter_mut().zip(g.data().iter()) {
                        *pv -= self.lr * (grad_scale * gv + self.weight_decay * *pv);
                    }
                }
            }
        }
    }

    /// Drop all velocity state (e.g. when the model weights are replaced by
    /// a broadcast global model at the start of a federated round).
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::Dense;
    use crate::loss::mse;
    use crate::rng::Rng64;

    fn one_param_model(initial: f32) -> Sequential {
        // Single 1x1 dense layer: y = w·x + b.
        let mut rng = Rng64::new(0);
        let mut model = Sequential::new().push(Dense::new(1, 1, Init::Zeros, &mut rng));
        model.set_flat_params(&[initial, 0.0]);
        model
    }

    #[test]
    fn vanilla_sgd_matches_hand_update() {
        let mut model = one_param_model(2.0);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        // loss = (w·1 − 0)², dL/dw = 2w = 4 at w=2 (x=1, target=0).
        let x = Tensor::from_vec(&[1, 1], vec![1.0]);
        let t = Tensor::from_vec(&[1, 1], vec![0.0]);
        let pred = model.forward(&x, true);
        let (_, grad) = mse(&pred, &t);
        model.zero_grad();
        model.backward(&grad);
        opt.step(&mut model);
        let w = model.flat_params()[0];
        assert!((w - (2.0 - 0.1 * 4.0)).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        let mut plain = one_param_model(1.0);
        let mut heavy = one_param_model(1.0);
        let mut opt_plain = Sgd::new(0.01, 0.0, 0.0);
        let mut opt_heavy = Sgd::new(0.01, 0.9, 0.0);
        let x = Tensor::from_vec(&[1, 1], vec![1.0]);
        let t = Tensor::from_vec(&[1, 1], vec![-10.0]);
        for _ in 0..20 {
            for (m, o) in [(&mut plain, &mut opt_plain), (&mut heavy, &mut opt_heavy)] {
                let pred = m.forward(&x, true);
                let (_, grad) = mse(&pred, &t);
                m.zero_grad();
                m.backward(&grad);
                o.step(m);
            }
        }
        let d_plain = (plain.flat_params()[0] - 1.0).abs();
        let d_heavy = (heavy.flat_params()[0] - 1.0).abs();
        assert!(
            d_heavy > d_plain * 2.0,
            "momentum should travel farther: {d_heavy} vs {d_plain}"
        );
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut model = one_param_model(1.0);
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        model.zero_grad(); // gradients are zero
        opt.step(&mut model);
        let w = model.flat_params()[0];
        assert!((w - (1.0 - 0.1 * 0.5)).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn step_scaled_negative_ascends() {
        let mut model = one_param_model(1.0);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let x = Tensor::from_vec(&[1, 1], vec![1.0]);
        let t = Tensor::from_vec(&[1, 1], vec![0.0]);
        let pred = model.forward(&x, true);
        let (_, grad) = mse(&pred, &t);
        model.zero_grad();
        model.backward(&grad);
        opt.step_scaled(&mut model, -1.0);
        // Ascent on the loss moves w away from 0.
        assert!(model.flat_params()[0] > 1.0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0, 0.0, 0.0);
    }

    #[test]
    fn reset_state_clears_velocity() {
        let mut model = one_param_model(1.0);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let x = Tensor::from_vec(&[1, 1], vec![1.0]);
        let t = Tensor::from_vec(&[1, 1], vec![0.0]);
        let pred = model.forward(&x, true);
        let (_, grad) = mse(&pred, &t);
        model.zero_grad();
        model.backward(&grad);
        opt.step(&mut model);
        opt.reset_state();
        // After reset, a zero-grad step must not move parameters.
        model.zero_grad();
        let before = model.flat_params();
        opt.step(&mut model);
        assert_eq!(before, model.flat_params());
    }
}
