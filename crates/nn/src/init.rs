//! Weight initialization schemes.
//!
//! The paper's policy/value networks and client CNNs are standard
//! fully-connected / convolutional stacks; we provide the two ubiquitous
//! fan-based schemes. All draws go through the deterministic [`Rng64`] so a
//! model is fully reproducible from its seed.

use crate::rng::Rng64;
use crate::tensor::Tensor;

/// Supported initialization schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Xavier/Glorot uniform: `U(±sqrt(6/(fan_in+fan_out)))`. Good default
    /// for tanh/sigmoid/softmax heads (used in the DDPG policy net).
    XavierUniform,
    /// He/Kaiming normal: `N(0, 2/fan_in)`. Default for ReLU-family stacks.
    HeNormal,
    /// All zeros (biases).
    Zeros,
    /// Small uniform `U(±0.003)` — the DDPG paper's final-layer init, which
    /// keeps initial actions near zero so softmax impact factors start
    /// near-uniform.
    FinalLayerSmall,
}

impl Init {
    /// Materialize a tensor of the given shape.
    ///
    /// `fan_in`/`fan_out` are passed explicitly because convolution kernels
    /// have fans that differ from their raw shape dimensions.
    pub fn build(self, shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng64) -> Tensor {
        match self {
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
                Tensor::rand_uniform(shape, -limit, limit, rng)
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in as f32).sqrt();
                Tensor::randn(shape, 0.0, std, rng)
            }
            Init::Zeros => Tensor::zeros(shape),
            Init::FinalLayerSmall => Tensor::rand_uniform(shape, -3e-3, 3e-3, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_limit() {
        let mut rng = Rng64::new(1);
        let t = Init::XavierUniform.build(&[64, 64], 64, 64, &mut rng);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
        // Should actually use the range, not collapse to zero.
        assert!(t.max() > limit * 0.5);
    }

    #[test]
    fn he_normal_std_is_plausible() {
        let mut rng = Rng64::new(2);
        let fan_in = 256;
        let t = Init::HeNormal.build(&[fan_in, 256], fan_in, 256, &mut rng);
        let std = (t.norm_sq() / t.numel() as f32).sqrt();
        let expected = (2.0f32 / fan_in as f32).sqrt();
        assert!(
            (std - expected).abs() < expected * 0.1,
            "std {std} vs expected {expected}"
        );
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = Rng64::new(3);
        let t = Init::Zeros.build(&[10], 10, 10, &mut rng);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn final_layer_small_is_tiny() {
        let mut rng = Rng64::new(4);
        let t = Init::FinalLayerSmall.build(&[32, 32], 32, 32, &mut rng);
        assert!(t.data().iter().all(|&x| x.abs() <= 3e-3));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::HeNormal.build(&[8, 8], 8, 8, &mut Rng64::new(9));
        let b = Init::HeNormal.build(&[8, 8], 8, 8, &mut Rng64::new(9));
        assert_eq!(a, b);
    }
}
