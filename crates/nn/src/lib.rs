//! # feddrl-nn — deep-learning substrate for the FedDRL reproduction
//!
//! A small, dependency-light neural-network library purpose-built for the
//! FedDRL (ICPP'22) reproduction. It provides everything the paper's
//! training stack needs and nothing more:
//!
//! * [`tensor::Tensor`] — dense row-major `f32` arrays with parallel matmul;
//! * [`layers`] — Dense / Conv2d / MaxPool2d / activations / Dropout with
//!   explicit backprop and finite-difference-verified gradients;
//! * [`loss`] — fused softmax cross-entropy and MSE;
//! * [`optim::Sgd`] — SGD with momentum, weight decay and an ascent mode
//!   (for the DDPG policy update);
//! * [`model::Sequential`] — layer stack with *flat parameter vector*
//!   import/export, the representation exchanged in federated aggregation;
//! * [`mask::StructuredMask`] — whole-hidden-unit sub-model masks for
//!   adaptive structured dropout (arXiv:2507.10430): pressured federated
//!   clients train a masked sub-model that still aggregates into the full
//!   model;
//! * [`zoo`] — the paper's client architectures (CNN, VGG-11) and MLP
//!   profiles;
//! * [`rng::Rng64`] — deterministic xoshiro256++ randomness so whole
//!   federated runs reproduce from one seed;
//! * [`parallel`] — crossbeam-scoped data-parallel helpers.
//!
//! ## Example
//!
//! ```
//! use feddrl_nn::prelude::*;
//!
//! let mut rng = Rng64::new(42);
//! let mut model = Sequential::new()
//!     .push(Dense::new(8, 16, Init::HeNormal, &mut rng))
//!     .push(Activation::leaky_relu())
//!     .push(Dense::new(16, 3, Init::XavierUniform, &mut rng));
//! let x = Tensor::randn(&[4, 8], 0.0, 1.0, &mut rng);
//! let logits = model.forward(&x, true);
//! let (loss, grad) = cross_entropy_logits(&logits, &[0, 1, 2, 0]);
//! model.zero_grad();
//! model.backward(&grad);
//! Sgd::new(0.1, 0.9, 0.0).step(&mut model);
//! assert!(loss > 0.0);
//! ```

#![warn(missing_docs)]

pub mod init;
pub mod layers;
pub mod loss;
pub mod mask;
pub mod model;
pub mod optim;
pub mod parallel;
pub mod rng;
pub mod tensor;
pub mod zoo;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::init::Init;
    pub use crate::layers::{Activation, ActivationKind, Conv2d, Dense, Dropout, Layer, MaxPool2d};
    pub use crate::loss::{accuracy, cross_entropy_logits, cross_entropy_loss_only, mse};
    pub use crate::mask::StructuredMask;
    pub use crate::model::Sequential;
    pub use crate::optim::Sgd;
    pub use crate::rng::Rng64;
    pub use crate::tensor::{softmax, Tensor};
    pub use crate::zoo::{build_mlp, ModelSpec};
}
