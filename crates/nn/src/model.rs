//! Sequential model container.
//!
//! [`Sequential`] is the unit of exchange in the federated simulation: the
//! server broadcasts its *flat parameter vector*, clients train a forked
//! copy, and strategies aggregate flat vectors back into the global model.
//! Hence the container's first-class support for
//! [`Sequential::flat_params`]/[`Sequential::set_flat_params`] alongside the
//! usual forward/backward plumbing.

use crate::layers::Layer;
use crate::tensor::Tensor;

/// An ordered stack of layers trained with explicit backprop.
#[derive(Clone)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequential {
    /// Empty model.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Append a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Run the full stack. `train` enables dropout masks and gradient caches.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut h = x.clone();
        for layer in self.layers.iter_mut() {
            h = layer.forward(&h, train);
        }
        h
    }

    /// Back-propagate from the loss gradient, accumulating parameter
    /// gradients in every layer; returns the gradient w.r.t. the input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Zero all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in self.layers.iter_mut() {
            layer.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Layers as mutable trait objects (used by the optimizer).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Layers as shared trait objects.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Copy every parameter into one flat vector (layer order, param order,
    /// row-major within each tensor). This is the model representation sent
    /// over the (simulated) network in federated learning.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            for p in layer.params() {
                out.extend_from_slice(p.data());
            }
        }
        out
    }

    /// Overwrite every parameter from a flat vector produced by
    /// [`Sequential::flat_params`] on an identically-shaped model.
    ///
    /// # Panics
    /// Panics if the vector length does not match [`Sequential::param_count`].
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat vector has {} scalars, model expects {}",
            flat.len(),
            self.param_count()
        );
        let mut offset = 0;
        for layer in self.layers.iter_mut() {
            for p in layer.params_mut() {
                let n = p.numel();
                p.data_mut().copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            }
        }
    }

    /// Accumulated gradients flattened in the same order as
    /// [`Sequential::flat_params`].
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            for g in layer.grads() {
                out.extend_from_slice(g.data());
            }
        }
        out
    }

    /// Add the FedProx proximal gradient `μ·(w − w_ref)` to the accumulated
    /// gradients (paper \[12\]; used when the local solver is FedProx).
    ///
    /// # Panics
    /// Panics if `w_ref` length mismatches the parameter count.
    pub fn add_proximal_grad(&mut self, mu: f32, w_ref: &[f32]) {
        assert_eq!(
            w_ref.len(),
            self.param_count(),
            "proximal reference length mismatch"
        );
        let mut offset = 0;
        for layer in self.layers.iter_mut() {
            // params() and grads() are index-aligned; walk them pairwise.
            let params: Vec<Vec<f32>> = layer.params().iter().map(|p| p.data().to_vec()).collect();
            for (g, p) in layer.grads_mut().into_iter().zip(params) {
                for (i, gv) in g.data_mut().iter_mut().enumerate() {
                    *gv += mu * (p[i] - w_ref[offset + i]);
                }
                offset += p.len();
            }
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&self) -> f32 {
        let mut acc = 0.0f32;
        for layer in &self.layers {
            for g in layer.grads() {
                acc += g.norm_sq();
            }
        }
        acc.sqrt()
    }

    /// Scale all gradients so their global norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for layer in self.layers.iter_mut() {
                for g in layer.grads_mut() {
                    g.scale(scale);
                }
            }
        }
        norm
    }

    /// One-line-per-layer architecture summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for (i, layer) in self.layers.iter().enumerate() {
            s.push_str(&format!(
                "{i:>3}: {:<12} params={}\n",
                layer.name(),
                layer.param_count()
            ));
        }
        s.push_str(&format!("total params: {}", self.param_count()));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::{Activation, Dense};
    use crate::loss::{cross_entropy_logits, mse};
    use crate::optim::Sgd;
    use crate::rng::Rng64;

    fn tiny_mlp(rng: &mut Rng64) -> Sequential {
        Sequential::new()
            .push(Dense::new(4, 8, Init::HeNormal, rng))
            .push(Activation::leaky_relu())
            .push(Dense::new(8, 3, Init::XavierUniform, rng))
    }

    #[test]
    fn forward_shape() {
        let mut rng = Rng64::new(1);
        let mut model = tiny_mlp(&mut rng);
        let x = Tensor::randn(&[5, 4], 0.0, 1.0, &mut rng);
        let y = model.forward(&x, false);
        assert_eq!(y.shape(), &[5, 3]);
    }

    #[test]
    fn flat_params_roundtrip() {
        let mut rng = Rng64::new(2);
        let model = tiny_mlp(&mut rng);
        let flat = model.flat_params();
        assert_eq!(flat.len(), model.param_count());
        let mut other = tiny_mlp(&mut rng); // different init
        assert_ne!(other.flat_params(), flat);
        other.set_flat_params(&flat);
        assert_eq!(other.flat_params(), flat);
    }

    #[test]
    #[should_panic(expected = "model expects")]
    fn set_flat_params_rejects_wrong_length() {
        let mut rng = Rng64::new(3);
        let mut model = tiny_mlp(&mut rng);
        model.set_flat_params(&[0.0; 3]);
    }

    #[test]
    fn clone_is_deep() {
        let mut rng = Rng64::new(4);
        let model = tiny_mlp(&mut rng);
        let mut fork = model.clone();
        let mut flat = fork.flat_params();
        flat[0] += 1.0;
        fork.set_flat_params(&flat);
        assert_ne!(model.flat_params()[0], fork.flat_params()[0]);
    }

    #[test]
    fn sgd_descends_on_regression_task() {
        let mut rng = Rng64::new(5);
        let mut model = Sequential::new()
            .push(Dense::new(2, 16, Init::HeNormal, &mut rng))
            .push(Activation::tanh())
            .push(Dense::new(16, 1, Init::XavierUniform, &mut rng));
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        // Learn y = x0 - x1.
        let x = Tensor::randn(&[64, 2], 0.0, 1.0, &mut rng);
        let target = Tensor::from_vec(&[64, 1], (0..64).map(|i| x.at(i, 0) - x.at(i, 1)).collect());
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..200 {
            let pred = model.forward(&x, true);
            let (loss, grad) = mse(&pred, &target);
            first_loss.get_or_insert(loss);
            last_loss = loss;
            model.zero_grad();
            model.backward(&grad);
            opt.step(&mut model);
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.1,
            "loss did not drop: {first_loss:?} -> {last_loss}"
        );
    }

    #[test]
    fn sgd_learns_classification() {
        let mut rng = Rng64::new(6);
        let mut model = tiny_mlp(&mut rng);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        // Three linearly separable blobs.
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            let class = i % 3;
            let center = [(class as f32) * 4.0 - 4.0; 4];
            for c in center {
                xs.push(c + rng.normal_f32(0.0, 0.3));
            }
            labels.push(class);
        }
        let x = Tensor::from_vec(&[90, 4], xs);
        for _ in 0..100 {
            let logits = model.forward(&x, true);
            let (_, grad) = cross_entropy_logits(&logits, &labels);
            model.zero_grad();
            model.backward(&grad);
            opt.step(&mut model);
        }
        let logits = model.forward(&x, false);
        let acc = crate::loss::accuracy(&logits, &labels);
        assert!(acc > 0.95, "blob accuracy only {acc}");
    }

    #[test]
    fn proximal_grad_pulls_toward_reference() {
        let mut rng = Rng64::new(7);
        let mut model = tiny_mlp(&mut rng);
        let w_ref = vec![0.0f32; model.param_count()];
        model.zero_grad();
        model.add_proximal_grad(0.5, &w_ref);
        // Gradient should equal 0.5 * (w - 0) = 0.5 * w.
        let flat_w = model.flat_params();
        let flat_g = model.flat_grads();
        for (w, g) in flat_w.iter().zip(flat_g.iter()) {
            assert!((g - 0.5 * w).abs() < 1e-6);
        }
    }

    #[test]
    fn grad_clipping_caps_norm() {
        let mut rng = Rng64::new(8);
        let mut model = tiny_mlp(&mut rng);
        let x = Tensor::randn(&[4, 4], 0.0, 10.0, &mut rng);
        let y = model.forward(&x, true);
        model.zero_grad();
        model.backward(&Tensor::full(y.shape(), 100.0));
        let pre = model.grad_norm();
        assert!(pre > 1.0);
        let reported = model.clip_grad_norm(1.0);
        assert!((reported - pre).abs() < pre * 1e-5);
        assert!((model.grad_norm() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn summary_mentions_layers() {
        let mut rng = Rng64::new(9);
        let model = tiny_mlp(&mut rng);
        let s = model.summary();
        assert!(s.contains("dense"));
        assert!(s.contains("leaky_relu"));
        assert!(s.contains("total params"));
    }
}
