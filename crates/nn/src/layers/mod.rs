//! Neural-network layers with explicit backpropagation.
//!
//! Rather than a tape-based autograd, each [`Layer`] caches what it needs in
//! `forward` and produces input gradients (accumulating parameter gradients)
//! in `backward`. This matches the fixed feed-forward topologies the FedDRL
//! paper uses — client CNN/VGG-11 classifiers and 2–3 layer MLP policy/value
//! networks — and keeps the hot training loop free of allocation-heavy graph
//! bookkeeping.
//!
//! Layout conventions: every inter-layer activation is a 2-D tensor
//! `[batch, features]`. Convolutional layers carry their own `(C, H, W)`
//! bookkeeping and interpret the feature axis as `C·H·W` in row-major order,
//! so no separate reshape/flatten layers are required.

mod activation;
mod conv;
mod dense;
mod dropout;
mod pool;

pub use activation::{Activation, ActivationKind};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use pool::MaxPool2d;

use crate::tensor::Tensor;

/// A differentiable layer.
///
/// Implementations cache forward inputs internally; `backward` must be called
/// after the matching `forward` with a gradient of the same shape as that
/// forward's output. Parameter gradients accumulate across calls until
/// [`Layer::zero_grad`].
pub trait Layer: Send + Sync {
    /// Compute the layer output. `train` toggles train-time behaviour
    /// (dropout masks); inference passes should use `false`.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Back-propagate `grad_out` (shape of the last forward's output),
    /// returning the gradient w.r.t. that forward's input and accumulating
    /// parameter gradients.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Immutable views of the trainable parameters (possibly empty).
    fn params(&self) -> Vec<&Tensor>;

    /// Mutable views of the trainable parameters, paired index-for-index
    /// with [`Layer::grads_mut`].
    fn params_mut(&mut self) -> Vec<&mut Tensor>;

    /// Immutable views of the accumulated gradients.
    fn grads(&self) -> Vec<&Tensor>;

    /// Mutable views of the accumulated gradients.
    fn grads_mut(&mut self) -> Vec<&mut Tensor>;

    /// Reset accumulated gradients to zero.
    fn zero_grad(&mut self) {
        for g in self.grads_mut() {
            g.fill_zero();
        }
    }

    /// Short human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// `(fan_in, fan_out)` for layers with a 2-D feature map — currently
    /// only [`Dense`] — `None` otherwise. Structured-dropout masking uses
    /// this to find adjacent dense pairs whose shared hidden units can be
    /// masked without breaking shapes.
    fn io_dims(&self) -> Option<(usize, usize)> {
        None
    }

    /// Number of trainable scalars.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Clone into a boxed trait object (layers hold no shared state, so this
    /// is a deep copy; used when federated clients fork the global model).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Finite-difference gradient check used by layer tests.
///
/// Verifies `d loss / d input` returned by `backward` against central
/// differences of `loss(x) = Σ forward(x) ⊙ seed`, where `seed` is a fixed
/// random weighting so every output coordinate participates.
#[cfg(test)]
pub(crate) fn grad_check_input(
    layer: &mut dyn Layer,
    x: &Tensor,
    seed_rng: &mut crate::rng::Rng64,
    tol: f32,
) {
    let y = layer.forward(x, true);
    let seed = Tensor::randn(y.shape(), 0.0, 1.0, seed_rng);
    let grad_in = layer.backward(&seed);
    let eps = 1e-2f32;
    for i in 0..x.numel() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let lp = layer.forward(&xp, true).dot(&seed);
        let lm = layer.forward(&xm, true).dot(&seed);
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = grad_in.data()[i];
        assert!(
            (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
            "input grad mismatch at {i}: numeric {numeric} vs analytic {analytic}"
        );
    }
}

/// Finite-difference check of parameter gradients (same seeding trick).
#[cfg(test)]
pub(crate) fn grad_check_params(
    layer: &mut dyn Layer,
    x: &Tensor,
    seed_rng: &mut crate::rng::Rng64,
    tol: f32,
) {
    let y = layer.forward(x, true);
    let seed = Tensor::randn(y.shape(), 0.0, 1.0, seed_rng);
    layer.zero_grad();
    let _ = layer.backward(&seed);
    let analytic: Vec<Vec<f32>> = layer.grads().iter().map(|g| g.data().to_vec()).collect();
    let eps = 1e-2f32;
    for (p_idx, param_grads) in analytic.iter().enumerate() {
        for (i, &a) in param_grads.iter().enumerate() {
            let orig = layer.params()[p_idx].data()[i];
            layer.params_mut()[p_idx].data_mut()[i] = orig + eps;
            let lp = layer.forward(x, true).dot(&seed);
            layer.params_mut()[p_idx].data_mut()[i] = orig - eps;
            let lm = layer.forward(x, true).dot(&seed);
            layer.params_mut()[p_idx].data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - a).abs() <= tol * (1.0 + numeric.abs().max(a.abs())),
                "param {p_idx} grad mismatch at {i}: numeric {numeric} vs analytic {a}"
            );
        }
    }
}
