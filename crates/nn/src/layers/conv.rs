//! 2-D convolution via im2col.
//!
//! Activations stay in the crate-wide `[batch, features]` layout; a
//! `Conv2d` is constructed with its input geometry `(C_in, H, W)` and
//! interprets/produces the feature axis as channel-major `C·H·W`. The
//! forward pass lowers each sample to a column matrix (im2col) and reduces
//! the convolution to one matmul per sample — the standard CPU strategy and
//! exactly how the paper-scale VGG-11 is executed here.

use super::Layer;
use crate::init::Init;
use crate::rng::Rng64;
use crate::tensor::Tensor;

/// Geometry shared by im2col/col2im.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ConvGeom {
    pub in_c: usize,
    pub h: usize,
    pub w: usize,
    pub kh: usize,
    pub kw: usize,
    pub stride: usize,
    pub pad: usize,
}

impl ConvGeom {
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Rows of the column matrix: one per kernel tap.
    pub fn col_rows(&self) -> usize {
        self.in_c * self.kh * self.kw
    }

    /// Columns of the column matrix: one per output pixel.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }
}

/// Lower one sample (`C·H·W` flat) into the `[col_rows, col_cols]` matrix.
pub(crate) fn im2col(x: &[f32], g: ConvGeom, out: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let cols = oh * ow;
    debug_assert_eq!(out.len(), g.col_rows() * cols);
    let mut row = 0;
    for c in 0..g.in_c {
        let plane = &x[c * g.h * g.w..(c + 1) * g.h * g.w];
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let out_row = &mut out[row * cols..(row + 1) * cols];
                let mut idx = 0;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        out_row[idx] =
                            if iy >= 0 && iy < g.h as isize && ix >= 0 && ix < g.w as isize {
                                plane[iy as usize * g.w + ix as usize]
                            } else {
                                0.0
                            };
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-add column gradients back to the image.
pub(crate) fn col2im(cols_grad: &[f32], g: ConvGeom, out: &mut [f32]) {
    let (oh, ow) = (g.out_h(), g.out_w());
    let n_cols = oh * ow;
    debug_assert_eq!(out.len(), g.in_c * g.h * g.w);
    out.fill(0.0);
    let mut row = 0;
    for c in 0..g.in_c {
        for ky in 0..g.kh {
            for kx in 0..g.kw {
                let col_row = &cols_grad[row * n_cols..(row + 1) * n_cols];
                let mut idx = 0;
                for oy in 0..oh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if iy >= 0 && iy < g.h as isize && ix >= 0 && ix < g.w as isize {
                            out[c * g.h * g.w + iy as usize * g.w + ix as usize] += col_row[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// 2-D convolution layer.
#[derive(Clone)]
pub struct Conv2d {
    geom: ConvGeom,
    out_c: usize,
    /// `[out_c, in_c*kh*kw]`.
    w: Tensor,
    /// `[out_c]`.
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    /// Per-sample im2col matrices from the last forward.
    cache_cols: Vec<Tensor>,
}

impl Conv2d {
    /// Build a convolution over inputs of shape `(in_c, h, w)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_c: usize,
        h: usize,
        w: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng64,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        assert!(
            h + 2 * pad >= kernel && w + 2 * pad >= kernel,
            "kernel {kernel} larger than padded input {h}x{w}+{pad}"
        );
        let geom = ConvGeom {
            in_c,
            h,
            w,
            kh: kernel,
            kw: kernel,
            stride,
            pad,
        };
        let fan_in = in_c * kernel * kernel;
        let fan_out = out_c * kernel * kernel;
        Self {
            geom,
            out_c,
            w: Init::HeNormal.build(&[out_c, fan_in], fan_in, fan_out, rng),
            b: Tensor::zeros(&[out_c]),
            gw: Tensor::zeros(&[out_c, fan_in]),
            gb: Tensor::zeros(&[out_c]),
            cache_cols: Vec::new(),
        }
    }

    /// Flat output feature count (`out_c · out_h · out_w`).
    pub fn out_features(&self) -> usize {
        self.out_c * self.geom.col_cols()
    }

    /// Flat input feature count expected per sample.
    pub fn in_features(&self) -> usize {
        self.geom.in_c * self.geom.h * self.geom.w
    }

    /// Output geometry `(out_c, out_h, out_w)`.
    pub fn out_geom(&self) -> (usize, usize, usize) {
        (self.out_c, self.geom.out_h(), self.geom.out_w())
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let batch = x.rows();
        debug_assert_eq!(
            x.cols(),
            self.in_features(),
            "Conv2d input feature mismatch"
        );
        let n_pix = self.geom.col_cols();
        let mut out = Tensor::zeros(&[batch, self.out_c * n_pix]);
        self.cache_cols.clear();
        self.cache_cols.reserve(batch);
        for s in 0..batch {
            let mut cols = Tensor::zeros(&[self.geom.col_rows(), n_pix]);
            im2col(x.row(s), self.geom, cols.data_mut());
            // y_s = W · cols  (out_c × n_pix), then add bias per channel.
            let y = self.w.matmul(&cols);
            let out_row = out.row_mut(s);
            for c in 0..self.out_c {
                let bias = self.b.data()[c];
                let src = y.row(c);
                let dst = &mut out_row[c * n_pix..(c + 1) * n_pix];
                for (d, &v) in dst.iter_mut().zip(src.iter()) {
                    *d = v + bias;
                }
            }
            self.cache_cols.push(cols);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let batch = grad_out.rows();
        assert_eq!(
            batch,
            self.cache_cols.len(),
            "Conv2d backward batch mismatch (forward not called?)"
        );
        let n_pix = self.geom.col_cols();
        let mut grad_in = Tensor::zeros(&[batch, self.in_features()]);
        for s in 0..batch {
            let g = Tensor::from_vec(&[self.out_c, n_pix], grad_out.row(s).to_vec());
            let cols = &self.cache_cols[s];
            // dW += G · colsᵀ ; db += Σ_pix G ; dcols = Wᵀ · G
            self.gw.add_assign(&g.matmul_t(cols));
            for c in 0..self.out_c {
                let sum: f32 = g.row(c).iter().sum();
                self.gb.data_mut()[c] += sum;
            }
            let dcols = self.w.t_matmul(&g);
            col2im(dcols.data(), self.geom, grad_in.row_mut(s));
        }
        self.cache_cols.clear();
        grad_in
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.gw, &self.gb]
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gw, &mut self.gb]
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{grad_check_input, grad_check_params};

    #[test]
    fn geometry() {
        let g = ConvGeom {
            in_c: 3,
            h: 8,
            w: 8,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(g.out_h(), 8);
        assert_eq!(g.out_w(), 8);
        assert_eq!(g.col_rows(), 27);
        assert_eq!(g.col_cols(), 64);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut rng = Rng64::new(1);
        // 1 channel, 3x3 kernel with center tap = 1 → identity with pad 1.
        let mut conv = Conv2d::new(1, 4, 4, 1, 3, 1, 1, &mut rng);
        let w = conv.params_mut().swap_remove(0);
        w.fill_zero();
        w.data_mut()[4] = 1.0; // center of the 3x3 kernel
        let x = Tensor::from_vec(&[1, 16], (0..16).map(|i| i as f32).collect());
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_convolution_value() {
        let mut rng = Rng64::new(2);
        // 2x2 all-ones kernel, stride 1, no pad on a 3x3 image: each output
        // is the sum of a 2x2 window.
        let mut conv = Conv2d::new(1, 3, 3, 1, 2, 1, 0, &mut rng);
        conv.params_mut()[0].data_mut().fill(1.0);
        let x = Tensor::from_vec(&[1, 9], vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), &[12., 16., 24., 28.]);
    }

    #[test]
    fn stride_two_halves_resolution() {
        let mut rng = Rng64::new(3);
        let conv = Conv2d::new(2, 8, 8, 5, 2, 2, 0, &mut rng);
        assert_eq!(conv.out_geom(), (5, 4, 4));
        assert_eq!(conv.out_features(), 80);
    }

    #[test]
    fn gradients_pass_finite_difference() {
        let mut rng = Rng64::new(4);
        let mut conv = Conv2d::new(2, 4, 4, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 32], 0.0, 1.0, &mut rng);
        grad_check_input(&mut conv, &x, &mut rng, 3e-2);
        grad_check_params(&mut conv, &x, &mut rng, 3e-2);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair, which backward correctness rests on.
        let mut rng = Rng64::new(5);
        let g = ConvGeom {
            in_c: 2,
            h: 5,
            w: 4,
            kh: 3,
            kw: 2,
            stride: 1,
            pad: 1,
        };
        let x = Tensor::randn(&[g.in_c * g.h * g.w], 0.0, 1.0, &mut rng);
        let y = Tensor::randn(&[g.col_rows() * g.col_cols()], 0.0, 1.0, &mut rng);
        let mut cols = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(x.data(), g, &mut cols);
        let lhs: f32 = cols.iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0; g.in_c * g.h * g.w];
        col2im(y.data(), g, &mut back);
        let rhs: f32 = x.data().iter().zip(back.iter()).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn rejects_oversized_kernel() {
        let mut rng = Rng64::new(6);
        let _ = Conv2d::new(1, 2, 2, 1, 5, 1, 0, &mut rng);
    }
}
