//! Fully-connected (affine) layer.

use super::Layer;
use crate::init::Init;
use crate::rng::Rng64;
use crate::tensor::Tensor;

/// Affine transform `y = x·W + b` with `W: [in, out]`, `b: [out]`.
///
/// This is the workhorse of the reproduction: the DDPG policy and value
/// networks (paper Table 1) are pure `Dense`/LeakyReLU stacks, and the
/// scaled-down client models are MLPs.
#[derive(Clone)]
pub struct Dense {
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    /// Input cached by the last `forward`, consumed by `backward`.
    cache_x: Option<Tensor>,
}

impl Dense {
    /// Create a layer with the given fan-in/fan-out and weight init
    /// (biases start at zero).
    pub fn new(in_dim: usize, out_dim: usize, init: Init, rng: &mut Rng64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "Dense dims must be positive");
        Self {
            w: init.build(&[in_dim, out_dim], in_dim, out_dim, rng),
            b: Tensor::zeros(&[out_dim]),
            gw: Tensor::zeros(&[in_dim, out_dim]),
            gb: Tensor::zeros(&[out_dim]),
            cache_x: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.shape()[0]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        debug_assert_eq!(
            x.cols(),
            self.in_dim(),
            "Dense forward: input has {} features, layer expects {}",
            x.cols(),
            self.in_dim()
        );
        let mut y = x.matmul(&self.w);
        y.add_row_vec(&self.b);
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("Dense backward called before forward");
        // dW = xᵀ · dY, db = Σ_rows dY, dX = dY · Wᵀ
        self.gw.add_assign(&x.t_matmul(grad_out));
        self.gb.add_assign(&grad_out.sum_rows());
        grad_out.matmul_t(&self.w)
    }

    fn params(&self) -> Vec<&Tensor> {
        vec![&self.w, &self.b]
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w, &mut self.b]
    }

    fn grads(&self) -> Vec<&Tensor> {
        vec![&self.gw, &self.gb]
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.gw, &mut self.gb]
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn io_dims(&self) -> Option<(usize, usize)> {
        Some((self.in_dim(), self.out_dim()))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{grad_check_input, grad_check_params};

    #[test]
    fn forward_matches_manual() {
        let mut rng = Rng64::new(1);
        let mut layer = Dense::new(2, 3, Init::Zeros, &mut rng);
        // W = [[1,2,3],[4,5,6]], b = [0.5, 0, -0.5]
        layer.params_mut()[0]
            .data_mut()
            .copy_from_slice(&[1., 2., 3., 4., 5., 6.]);
        layer.params_mut()[1]
            .data_mut()
            .copy_from_slice(&[0.5, 0.0, -0.5]);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[9.5, 12.0, 14.5]);
    }

    #[test]
    fn gradients_pass_finite_difference() {
        let mut rng = Rng64::new(2);
        let mut layer = Dense::new(4, 3, Init::XavierUniform, &mut rng);
        let x = Tensor::randn(&[5, 4], 0.0, 1.0, &mut rng);
        grad_check_input(&mut layer, &x, &mut rng, 2e-2);
        grad_check_params(&mut layer, &x, &mut rng, 2e-2);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = Rng64::new(3);
        let mut layer = Dense::new(2, 2, Init::XavierUniform, &mut rng);
        let x = Tensor::randn(&[3, 2], 0.0, 1.0, &mut rng);
        let g = Tensor::full(&[3, 2], 1.0);
        let _ = layer.forward(&x, true);
        let _ = layer.backward(&g);
        let first = layer.grads()[0].clone();
        let _ = layer.forward(&x, true);
        let _ = layer.backward(&g);
        let doubled = layer.grads()[0].clone();
        for (a, b) in first.data().iter().zip(doubled.data().iter()) {
            assert!((2.0 * a - b).abs() < 1e-5, "grads did not accumulate");
        }
        layer.zero_grad();
        assert_eq!(layer.grads()[0].sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut rng = Rng64::new(4);
        let mut layer = Dense::new(2, 2, Init::Zeros, &mut rng);
        let g = Tensor::zeros(&[1, 2]);
        let _ = layer.backward(&g);
    }

    #[test]
    fn param_count() {
        let mut rng = Rng64::new(5);
        let layer = Dense::new(10, 7, Init::Zeros, &mut rng);
        assert_eq!(layer.param_count(), 10 * 7 + 7);
    }
}
