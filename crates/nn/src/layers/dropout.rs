//! Inverted dropout.

use super::Layer;
use crate::rng::Rng64;
use crate::tensor::Tensor;
use parking_lot::Mutex;
use std::sync::Arc;

/// Inverted dropout: at train time each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1−p)`, so inference is the identity.
///
/// VGG-11's classifier head uses dropout; the scaled-down profiles keep it
/// available for parity. The layer owns its RNG (behind a mutex so the layer
/// stays `Send` for crossbeam workers) and is reseeded on clone derivation
/// by the model builder.
pub struct Dropout {
    p: f32,
    rng: Arc<Mutex<Rng64>>,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Create a dropout layer with drop probability `p ∈ [0, 1)`.
    pub fn new(p: f32, rng: Rng64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0,1), got {p}"
        );
        Self {
            p,
            rng: Arc::new(Mutex::new(rng)),
            mask: None,
        }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Clone for Dropout {
    fn clone(&self) -> Self {
        // Clones derive an independent stream so forked client models do not
        // share masks (sharing would correlate their SGD noise).
        let child = self.rng.lock().derive(0x0D0D);
        Self {
            p: self.p,
            rng: Arc::new(Mutex::new(child)),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(x.shape());
        {
            let mut rng = self.rng.lock();
            for m in mask.data_mut() {
                *m = if rng.chance(keep as f64) { scale } else { 0.0 };
            }
        }
        let mut y = x.clone();
        y.mul_assign(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self.mask.take() {
            Some(mask) => {
                let mut g = grad_out.clone();
                g.mul_assign(&mask);
                g
            }
            // Inference-mode forward (or p == 0): identity.
            None => grad_out.clone(),
        }
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut layer = Dropout::new(0.5, Rng64::new(1));
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]).reshape(&[1, 3]);
        let y = layer.forward(&x, false);
        assert_eq!(y, x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut layer = Dropout::new(0.3, Rng64::new(2));
        let x = Tensor::full(&[1, 20_000], 1.0);
        let y = layer.forward(&x, true);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "inverted-dropout mean {mean}");
        // Survivors are scaled by 1/keep.
        let scale = 1.0 / 0.7;
        assert!(y
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - scale).abs() < 1e-5));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut layer = Dropout::new(0.5, Rng64::new(3));
        let x = Tensor::full(&[1, 64], 1.0);
        let y = layer.forward(&x, true);
        let g = layer.backward(&Tensor::full(&[1, 64], 1.0));
        // Gradient must be zero exactly where the output was dropped.
        for (yo, go) in y.data().iter().zip(g.data().iter()) {
            assert_eq!(*yo == 0.0, *go == 0.0);
        }
    }

    #[test]
    fn zero_p_is_passthrough_in_training() {
        let mut layer = Dropout::new(0.0, Rng64::new(4));
        let x = Tensor::from_slice(&[5.0, -1.0]).reshape(&[1, 2]);
        assert_eq!(layer.forward(&x, true), x);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn rejects_invalid_probability() {
        let _ = Dropout::new(1.0, Rng64::new(5));
    }

    #[test]
    fn clones_use_independent_streams() {
        let mut a = Dropout::new(0.5, Rng64::new(6));
        let mut b = a.clone();
        let x = Tensor::full(&[1, 256], 1.0);
        let ya = a.forward(&x, true);
        let yb = b.forward(&x, true);
        assert_ne!(ya, yb, "cloned dropout produced an identical mask");
    }
}
