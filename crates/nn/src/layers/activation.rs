//! Parameter-free activation layers.

use super::Layer;
use crate::tensor::Tensor;

/// Supported activation functions.
///
/// The paper uses LeakyReLU throughout the DRL networks (§3.4.1) and ReLU in
/// the client CNNs; Tanh and Sigmoid serve the policy head (μ bounded by
/// tanh, σ shaped by sigmoid — see `feddrl-drl`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActivationKind {
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// LeakyReLU with the given negative-side slope (paper default 0.01).
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl ActivationKind {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::LeakyRelu(a) => {
                if x >= 0.0 {
                    x
                } else {
                    a * x
                }
            }
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of input `x` and output `y` (whichever
    /// is cheaper for the kind).
    #[inline]
    fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::LeakyRelu(a) => {
                if x > 0.0 {
                    1.0
                } else {
                    a
                }
            }
            ActivationKind::Tanh => 1.0 - y * y,
            ActivationKind::Sigmoid => y * (1.0 - y),
        }
    }
}

/// Element-wise activation layer.
#[derive(Clone)]
pub struct Activation {
    kind: ActivationKind,
    cache_x: Option<Tensor>,
    cache_y: Option<Tensor>,
}

impl Activation {
    /// Create an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Self {
            kind,
            cache_x: None,
            cache_y: None,
        }
    }

    /// The paper's default LeakyReLU (slope 0.01).
    pub fn leaky_relu() -> Self {
        Self::new(ActivationKind::LeakyRelu(0.01))
    }

    /// Plain ReLU.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    /// Hyperbolic tangent.
    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    /// Logistic sigmoid.
    pub fn sigmoid() -> Self {
        Self::new(ActivationKind::Sigmoid)
    }
}

impl Layer for Activation {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let y = x.map(|v| self.kind.apply(v));
        self.cache_x = Some(x.clone());
        self.cache_y = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("Activation backward called before forward");
        let y = self
            .cache_y
            .take()
            .expect("activation output cache missing");
        let mut grad = grad_out.clone();
        for ((g, &xv), &yv) in grad
            .data_mut()
            .iter_mut()
            .zip(x.data().iter())
            .zip(y.data().iter())
        {
            *g *= self.kind.derivative(xv, yv);
        }
        grad
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        match self.kind {
            ActivationKind::Relu => "relu",
            ActivationKind::LeakyRelu(_) => "leaky_relu",
            ActivationKind::Tanh => "tanh",
            ActivationKind::Sigmoid => "sigmoid",
        }
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::grad_check_input;
    use crate::rng::Rng64;

    #[test]
    fn relu_clamps_negatives() {
        let mut layer = Activation::relu();
        let x = Tensor::from_vec(&[1, 4], vec![-2.0, -0.5, 0.0, 3.0]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let mut layer = Activation::new(ActivationKind::LeakyRelu(0.1));
        let x = Tensor::from_vec(&[1, 3], vec![-10.0, 0.0, 5.0]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), &[-1.0, 0.0, 5.0]);
    }

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        let mut layer = Activation::sigmoid();
        let x = Tensor::from_vec(&[1, 3], vec![-100.0, 0.0, 100.0]);
        let y = layer.forward(&x, false);
        assert!(y.data()[0] < 1e-6);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        let mut layer = Activation::tanh();
        let x = Tensor::from_vec(&[1, 2], vec![1.3, -1.3]);
        let y = layer.forward(&x, false);
        assert!((y.data()[0] + y.data()[1]).abs() < 1e-6);
    }

    #[test]
    fn all_kinds_pass_gradient_check() {
        let mut rng = Rng64::new(7);
        for kind in [
            ActivationKind::Relu,
            ActivationKind::LeakyRelu(0.01),
            ActivationKind::Tanh,
            ActivationKind::Sigmoid,
        ] {
            let mut layer = Activation::new(kind);
            // Offset away from 0 to dodge the ReLU kink during finite diff.
            let mut x = Tensor::randn(&[4, 6], 0.0, 1.0, &mut rng);
            x.map_inplace(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
            grad_check_input(&mut layer, &x, &mut rng, 2e-2);
        }
    }

    #[test]
    fn has_no_params() {
        let layer = Activation::leaky_relu();
        assert_eq!(layer.param_count(), 0);
    }
}
