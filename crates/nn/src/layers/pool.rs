//! Max pooling.

use super::Layer;
use crate::tensor::Tensor;

/// 2-D max pooling over non-overlapping-or-strided windows.
///
/// Like [`super::Conv2d`], the layer is constructed with its input geometry
/// `(c, h, w)` and works on the flat `[batch, c·h·w]` layout. Backward routes
/// each window's gradient to the argmax position recorded during forward
/// (ties break toward the first element scanned, matching PyTorch).
#[derive(Clone)]
pub struct MaxPool2d {
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    /// Flat input index of the max of each output cell, per sample.
    cache_argmax: Vec<Vec<u32>>,
    in_features: usize,
}

impl MaxPool2d {
    /// Build a pooling layer for inputs of shape `(c, h, w)` with window `k`
    /// and the given stride.
    pub fn new(c: usize, h: usize, w: usize, k: usize, stride: usize) -> Self {
        assert!(
            k > 0 && stride > 0,
            "pool window and stride must be positive"
        );
        assert!(
            h >= k && w >= k,
            "pool window {k} larger than input {h}x{w}"
        );
        Self {
            c,
            h,
            w,
            k,
            stride,
            cache_argmax: Vec::new(),
            in_features: c * h * w,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h - self.k) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w - self.k) / self.stride + 1
    }

    /// Flat output feature count.
    pub fn out_features(&self) -> usize {
        self.c * self.out_h() * self.out_w()
    }

    /// Output geometry `(c, out_h, out_w)`.
    pub fn out_geom(&self) -> (usize, usize, usize) {
        (self.c, self.out_h(), self.out_w())
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let batch = x.rows();
        debug_assert_eq!(x.cols(), self.in_features, "MaxPool2d input mismatch");
        let (oh, ow) = (self.out_h(), self.out_w());
        let mut out = Tensor::zeros(&[batch, self.c * oh * ow]);
        self.cache_argmax.clear();
        self.cache_argmax.reserve(batch);
        for s in 0..batch {
            let row = x.row(s);
            let out_row = out.row_mut(s);
            let mut argmax = vec![0u32; self.c * oh * ow];
            let mut oidx = 0;
            for c in 0..self.c {
                let plane = &row[c * self.h * self.w..(c + 1) * self.h * self.w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let y0 = oy * self.stride;
                        let x0 = ox * self.stride;
                        let mut best = f32::NEG_INFINITY;
                        let mut best_at = 0usize;
                        for dy in 0..self.k {
                            for dx in 0..self.k {
                                let at = (y0 + dy) * self.w + (x0 + dx);
                                let v = plane[at];
                                if v > best {
                                    best = v;
                                    best_at = at;
                                }
                            }
                        }
                        out_row[oidx] = best;
                        argmax[oidx] = (c * self.h * self.w + best_at) as u32;
                        oidx += 1;
                    }
                }
            }
            self.cache_argmax.push(argmax);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let batch = grad_out.rows();
        assert_eq!(
            batch,
            self.cache_argmax.len(),
            "MaxPool2d backward batch mismatch (forward not called?)"
        );
        let mut grad_in = Tensor::zeros(&[batch, self.in_features]);
        for s in 0..batch {
            let g_row = grad_out.row(s);
            let out = grad_in.row_mut(s);
            for (g, &at) in g_row.iter().zip(self.cache_argmax[s].iter()) {
                out[at as usize] += g;
            }
        }
        self.cache_argmax.clear();
        grad_in
    }

    fn params(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn grads(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn grads_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_maxima() {
        let mut pool = MaxPool2d::new(1, 4, 4, 2, 2);
        let x = Tensor::from_vec(
            &[1, 16],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let y = pool.forward(&x, false);
        assert_eq!(y.data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn multi_channel_independent() {
        let mut pool = MaxPool2d::new(2, 2, 2, 2, 2);
        let x = Tensor::from_vec(&[1, 8], vec![1., 2., 3., 4., -1., -2., -3., -4.]);
        let y = pool.forward(&x, false);
        assert_eq!(y.data(), &[4.0, -1.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(1, 2, 2, 2, 2);
        let x = Tensor::from_vec(&[1, 4], vec![0.1, 0.9, 0.3, 0.2]);
        let _ = pool.forward(&x, true);
        let g = pool.backward(&Tensor::from_vec(&[1, 1], vec![2.0]));
        assert_eq!(g.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn strided_overlapping_windows() {
        let mut pool = MaxPool2d::new(1, 3, 3, 2, 1);
        assert_eq!(pool.out_geom(), (1, 2, 2));
        let x = Tensor::from_vec(&[1, 9], vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let y = pool.forward(&x, false);
        assert_eq!(y.data(), &[5., 6., 8., 9.]);
    }

    #[test]
    fn batch_independence() {
        let mut pool = MaxPool2d::new(1, 2, 2, 2, 2);
        let x = Tensor::from_vec(&[2, 4], vec![1., 2., 3., 4., 40., 30., 20., 10.]);
        let y = pool.forward(&x, false);
        assert_eq!(y.data(), &[4.0, 40.0]);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn rejects_oversized_window() {
        let _ = MaxPool2d::new(1, 2, 2, 3, 1);
    }
}
