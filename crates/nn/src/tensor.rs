//! Dense row-major `f32` tensors.
//!
//! [`Tensor`] is the single numeric container used by every layer, loss and
//! optimizer in the reproduction. It is intentionally small: federated
//! aggregation and DDPG only need 1-D/2-D (and, for convolutions, 4-D)
//! dense arrays with a handful of BLAS-1/BLAS-3 style kernels. The matmul
//! kernels use an `i-k-j` loop order over pre-sliced rows (auto-vectorizable,
//! no bounds checks in the inner loop) and parallelize over row blocks with
//! crossbeam when the problem is large enough to amortize thread spawn.

use crate::rng::Rng64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense row-major tensor of `f32` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// Minimum number of multiply-adds before matmul goes parallel.
const PAR_MATMUL_FLOPS: usize = 1 << 18;

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1]
            )
        }
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// All-zeros tensor with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// Build from an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {shape:?} wants {numel} elements, got {}",
            data.len()
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// I.i.d. normal entries `N(mean, std²)`.
    pub fn randn(shape: &[usize], mean: f32, std: f32, rng: &mut Rng64) -> Self {
        let mut t = Self::zeros(shape);
        rng.fill_normal(&mut t.data, mean, std);
        t
    }

    /// I.i.d. uniform entries from `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng64) -> Self {
        let mut t = Self::zeros(shape);
        rng.fill_uniform(&mut t.data, lo, hi);
        t
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Shape as a slice.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Number of rows; 2-D tensors only.
    #[inline]
    pub fn rows(&self) -> usize {
        debug_assert_eq!(self.ndim(), 2, "rows() requires a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns; 2-D tensors only.
    #[inline]
    pub fn cols(&self) -> usize {
        debug_assert_eq!(self.ndim(), 2, "cols() requires a 2-D tensor");
        self.shape[1]
    }

    /// Flat data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)` of a 2-D tensor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element at `(r, c)` of a 2-D tensor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols + c]
    }

    /// Row `r` of a 2-D tensor as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let cols = self.shape[self.ndim() - 1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row `r` of a 2-D tensor.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let cols = self.shape[self.ndim() - 1];
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Reinterpret with a new shape (same element count).
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            self.data.len(),
            "reshape to {shape:?} incompatible with {} elements",
            self.data.len()
        );
        self.shape = shape.to_vec();
        self
    }

    /// `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    // ------------------------------------------------------------------
    // Element-wise arithmetic
    // ------------------------------------------------------------------

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        debug_assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self -= other`.
    pub fn sub_assign(&mut self, other: &Tensor) {
        debug_assert_eq!(self.shape, other.shape, "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// In-place Hadamard product `self *= other`.
    pub fn mul_assign(&mut self, other: &Tensor) {
        debug_assert_eq!(self.shape, other.shape, "mul_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// In-place `self += alpha * other` (BLAS axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        debug_assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Out-of-place `self + other`.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Out-of-place `self - other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Apply `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Reset every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Index of the maximum element of each row (2-D tensors).
    pub fn argmax_rows(&self) -> Vec<usize> {
        debug_assert_eq!(self.ndim(), 2);
        (0..self.rows())
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                let mut best_v = row[0];
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product `self × other` for 2-D tensors, parallel over row
    /// blocks for large problems.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims mismatch: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        let a = &self.data;
        let b = &other.data;
        let flops = m * n * k;
        // `row0` is the index of the first row held in `out_rows`.
        let kernel = |row0: usize, out_rows: &mut [f32]| {
            for (local_r, out_row) in out_rows.chunks_exact_mut(n).enumerate() {
                let r = row0 + local_r;
                let a_row = &a[r * k..(r + 1) * k];
                for (kk, &a_v) in a_row.iter().enumerate() {
                    if a_v == 0.0 {
                        continue;
                    }
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (o, &b_v) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a_v * b_v;
                    }
                }
            }
        };
        let threads = crate::parallel::max_threads().min(m);
        if flops >= PAR_MATMUL_FLOPS && threads > 1 {
            // Chunks are whole rows so each worker owns a disjoint row band.
            let rows_per_block = m.div_ceil(threads);
            crossbeam::scope(|scope| {
                for (block, out_rows) in out.data.chunks_mut(rows_per_block * n).enumerate() {
                    let kernel = &kernel;
                    scope.spawn(move |_| kernel(block * rows_per_block, out_rows));
                }
            })
            .expect("matmul worker panicked");
        } else {
            kernel(0, &mut out.data);
        }
        out
    }

    /// `selfᵀ × other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "t_matmul inner dims mismatch: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (r, &a_v) in a_row.iter().enumerate() {
                if a_v == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[r * n..(r + 1) * n];
                for (o, &b_v) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_v * b_v;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_t inner dims mismatch: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        for r in 0..m {
            let a_row = &self.data[r * k..(r + 1) * k];
            let out_row = &mut out.data[r * n..(r + 1) * n];
            for (c, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[c * k..(c + 1) * k];
                let mut acc = 0.0;
                for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
        out
    }

    /// Explicit 2-D transpose.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[n, m]);
        for r in 0..m {
            for c in 0..n {
                out.data[c * m + r] = self.data[r * n + c];
            }
        }
        out
    }

    /// Broadcast-add a length-`cols` bias vector to every row of a 2-D
    /// tensor.
    pub fn add_row_vec(&mut self, bias: &Tensor) {
        debug_assert_eq!(self.ndim(), 2);
        debug_assert_eq!(bias.numel(), self.cols(), "bias length mismatch");
        let n = self.cols();
        for row in self.data.chunks_exact_mut(n) {
            for (v, &b) in row.iter_mut().zip(bias.data.iter()) {
                *v += b;
            }
        }
    }

    /// Column-wise sum of a 2-D tensor (gradient of a broadcast bias).
    pub fn sum_rows(&self) -> Tensor {
        debug_assert_eq!(self.ndim(), 2);
        let n = self.cols();
        let mut out = Tensor::zeros(&[n]);
        for row in self.data.chunks_exact(n) {
            for (o, &v) in out.data.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
        out
    }

    /// Dot product of two same-shape tensors viewed as flat vectors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        debug_assert_eq!(self.numel(), other.numel(), "dot length mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Softmax over the last axis of a 2-D tensor (numerically stable).
    pub fn softmax_rows(&self) -> Tensor {
        debug_assert_eq!(self.ndim(), 2);
        let mut out = self.clone();
        let n = out.cols();
        for row in out.data.chunks_exact_mut(n) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        out
    }
}

/// Numerically-stable softmax of a flat slice, written into a new vector.
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out: Vec<f32> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = out.iter().sum();
    let inv = 1.0 / sum;
    for v in out.iter_mut() {
        *v *= inv;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for r in 0..m {
            for c in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(r, kk) * b.at(kk, c);
                }
                *out.at_mut(r, c) = acc;
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        let u = Tensor::full(&[4], 2.5);
        assert!(u.data().iter().all(|&x| x == 2.5));
    }

    #[test]
    #[should_panic(expected = "wants")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_matches_naive_random_and_parallel_path() {
        let mut rng = Rng64::new(1);
        // Large enough to cross PAR_MATMUL_FLOPS.
        let a = Tensor::randn(&[96, 80], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[80, 96], 0.0, 1.0, &mut rng);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert_close(&fast, &slow, 1e-3);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let mut rng = Rng64::new(2);
        let a = Tensor::randn(&[7, 5], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[7, 4], 0.0, 1.0, &mut rng);
        let fused = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert_close(&fused, &explicit, 1e-4);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let mut rng = Rng64::new(3);
        let a = Tensor::randn(&[6, 5], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[8, 5], 0.0, 1.0, &mut rng);
        let fused = a.matmul_t(&b);
        let explicit = a.matmul(&b.transpose());
        assert_close(&fused, &explicit, 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn matmul_rejects_mismatched_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Tensor::from_slice(&[1., 2., 3.]);
        let b = Tensor::from_slice(&[4., 5., 6.]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[5., 7., 9.]);
        a.sub_assign(&b);
        assert_eq!(a.data(), &[1., 2., 3.]);
        a.mul_assign(&b);
        assert_eq!(a.data(), &[4., 10., 18.]);
        a.scale(0.5);
        assert_eq!(a.data(), &[2., 5., 9.]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[10., 15., 21.]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1., -2., 3., 0.]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.5, 2.0, 2.0, -1.0]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn bias_broadcast_and_sum_rows_are_adjoint() {
        let mut x = Tensor::zeros(&[3, 2]);
        let b = Tensor::from_slice(&[1.0, -1.0]);
        x.add_row_vec(&b);
        assert_eq!(x.data(), &[1., -1., 1., -1., 1., -1.]);
        let s = x.sum_rows();
        assert_eq!(s.data(), &[3.0, -3.0]);
    }

    #[test]
    fn softmax_rows_on_simplex() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 1000., 1000., 1000.]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        // Row of equal logits → uniform.
        for &p in s.row(1) {
            assert!((p - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_flat_handles_extremes() {
        let s = softmax(&[-1e30, 0.0, 1e30]);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(s[2] > 0.999);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::from_slice(&[1., 2., 3., 4., 5., 6.]).reshape(&[2, 3]);
        assert_eq!(t.at(1, 2), 6.0);
        let back = t.reshape(&[6]);
        assert_eq!(back.shape(), &[6]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut t = Tensor::zeros(&[4]);
        assert!(t.is_finite());
        t.data_mut()[2] = f32::NAN;
        assert!(!t.is_finite());
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = Rng64::new(4);
        let t = Tensor::randn(&[3, 3], 0.0, 1.0, &mut rng);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng64::new(5);
        let t = Tensor::randn(&[4, 7], 0.0, 1.0, &mut rng);
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Tensor::from_slice(&[1., 2., 3.]);
        let b = Tensor::from_slice(&[4., 5., 6.]);
        assert_eq!(a.dot(&b), 32.0);
    }
}
