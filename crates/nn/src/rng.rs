//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the reproduction (weight init, data
//! synthesis, client selection, DDPG exploration noise, …) draws from
//! [`Rng64`], a xoshiro256++ generator seeded through SplitMix64. Using our
//! own tiny implementation instead of the `rand` crate guarantees the same
//! bit-streams on every platform and toolchain, which in turn makes entire
//! federated-learning runs reproducible from a single `u64` seed.
//!
//! `derive` produces statistically independent child generators from a
//! parent seed plus a stream label, so parallel workers (e.g. one per
//! federated client) can be seeded as `rng.derive(client_id)` without any
//! cross-thread coordination — a requirement for deterministic results under
//! crossbeam's nondeterministic scheduling.

use serde::{Deserialize, Serialize};

/// xoshiro256++ PRNG with Box–Muller normal sampling.
///
/// Passes BigCrush (per the reference implementation by Blackman & Vigna);
/// period 2^256 − 1. Not cryptographically secure — simulation use only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rng64 {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller transform.
    spare_normal: Option<f64>,
}

#[inline(always)]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline(always)]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Rng64 {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            s,
            spare_normal: None,
        }
    }

    /// Derive an independent child generator for stream `stream`.
    ///
    /// The child seed mixes the parent's *current* state with the stream
    /// label, so deriving the same label twice from an advanced parent gives
    /// different streams, while deriving from a freshly-seeded parent is
    /// fully reproducible.
    pub fn derive(&self, stream: u64) -> Self {
        let mixed =
            self.s[0] ^ self.s[1].rotate_left(17) ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Self::new(mixed)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of entropy.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo <= hi, "uniform: lo must be <= hi");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift rejection
    /// method to avoid modulo bias.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below: n must be positive");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= lo.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn int_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi, "int_range: lo must be <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Standard normal sample via Box–Muller (polar-free form, cached spare).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation as `f32`.
    #[inline]
    pub fn normal_f32(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal() as f32
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (partial Fisher–Yates).
    ///
    /// Runs in O(k) time and memory regardless of `n`: instead of
    /// materializing the `0..n` pool, a hash map records only the slots the
    /// virtual shuffle has displaced (at most `2k` entries), so sampling
    /// 100 clients from a 10⁶-device fleet never allocates a
    /// million-element vector. The draw sequence (`below(n - i)` per step)
    /// and the swap semantics are exactly those of the dense pool, so the
    /// returned sample is bit-identical to the historical implementation —
    /// existing seeded runs reproduce unchanged.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k ({k}) must not exceed n ({n})");
        // displaced[p] = the value the virtual pool currently holds at
        // position p, for the positions that no longer hold their identity.
        let mut displaced: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::with_capacity(2 * k);
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let j = i + self.below(n - i);
            let vi = displaced.get(&i).copied().unwrap_or(i);
            let vj = displaced.get(&j).copied().unwrap_or(j);
            // swap(i, j) on the virtual pool; position i is final (out).
            displaced.insert(j, vi);
            out.push(vj);
        }
        out
    }

    /// Sample an index from an (unnormalized) non-negative weight vector.
    ///
    /// # Panics
    /// Panics if the weights are empty or sum to a non-finite / non-positive
    /// value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index: empty weights");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weighted_index: weights must sum to a positive finite value (got {total})"
        );
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0, "weighted_index: negative weight at {i}");
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fill `out` with i.i.d. normal samples `N(mean, std²)`.
    pub fn fill_normal(&mut self, out: &mut [f32], mean: f32, std: f32) {
        for v in out.iter_mut() {
            *v = self.normal_f32(mean, std);
        }
    }

    /// Fill `out` with i.i.d. uniform samples from `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out.iter_mut() {
            *v = self.uniform(lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "distinct seeds should not collide in 64 draws");
    }

    #[test]
    fn derive_is_reproducible_and_distinct() {
        let parent = Rng64::new(7);
        let mut c1 = parent.derive(3);
        let mut c2 = parent.derive(3);
        let mut c3 = parent.derive(4);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c1b = parent.derive(3);
        assert_ne!(c1b.next_u64(), c3.next_u64());
    }

    #[test]
    fn uniform_unit_interval_bounds_and_mean() {
        let mut rng = Rng64::new(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 0.5).abs() < 0.01,
            "uniform mean {mean} far from 0.5"
        );
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng64::new(5);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.below(7)] += 1;
        }
        for &c in &counts {
            let expected = n / 7;
            assert!(
                (c as i64 - expected as i64).abs() < (expected / 10) as i64,
                "bucket count {c} deviates more than 10% from {expected}"
            );
        }
    }

    #[test]
    fn int_range_inclusive() {
        let mut rng = Rng64::new(11);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.int_range(3, 6);
            assert!((3..=6).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 6;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::new(2024);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.normal();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "normal variance {var}");
    }

    #[test]
    fn normal_f32_respects_params() {
        let mut rng = Rng64::new(8);
        let n = 100_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            sum += rng.normal_f32(5.0, 0.5) as f64;
        }
        assert!((sum / n as f64 - 5.0).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::new(3);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng64::new(17);
        let sample = rng.sample_indices(50, 20);
        assert_eq!(sample.len(), 20);
        let mut seen = [false; 50];
        for &i in &sample {
            assert!(i < 50);
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn sample_indices_rejects_oversample() {
        let mut rng = Rng64::new(1);
        let _ = rng.sample_indices(3, 4);
    }

    /// The sparse sampler must replay the historical dense partial
    /// Fisher–Yates draw-for-draw: same seed, same sample, at every (n, k).
    #[test]
    fn sample_indices_matches_dense_fisher_yates() {
        fn dense(rng: &mut Rng64, n: usize, k: usize) -> Vec<usize> {
            let mut pool: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + rng.below(n - i);
                pool.swap(i, j);
            }
            pool.truncate(k);
            pool
        }
        for seed in 0..20 {
            for &(n, k) in &[(1, 1), (5, 5), (50, 7), (1000, 64), (1000, 1000)] {
                let sparse = Rng64::new(seed).sample_indices(n, k);
                let reference = dense(&mut Rng64::new(seed), n, k);
                assert_eq!(sparse, reference, "diverged at seed {seed}, n {n}, k {k}");
            }
        }
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = Rng64::new(21);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket was drawn");
        assert!(
            counts[2] > counts[0] * 5,
            "9:1 weights not respected: {counts:?}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng64::new(4);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn fill_helpers_cover_buffer() {
        let mut rng = Rng64::new(6);
        let mut buf = vec![0.0f32; 256];
        rng.fill_uniform(&mut buf, 2.0, 3.0);
        assert!(buf.iter().all(|&x| (2.0..3.0).contains(&x)));
        rng.fill_normal(&mut buf, 0.0, 1.0);
        assert!(buf.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn serde_roundtrip_preserves_stream() {
        let mut rng = Rng64::new(123);
        let _ = rng.next_u64();
        let json = serde_json::to_string(&rng).unwrap();
        let mut restored: Rng64 = serde_json::from_str(&json).unwrap();
        for _ in 0..16 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }
}
