//! Loss functions with fused gradients.
//!
//! Both losses return `(mean_loss, gradient_wrt_input)` in one pass; the
//! gradient is already divided by the batch size so callers can feed it
//! straight into `Sequential::backward`.

use crate::tensor::Tensor;

/// Softmax cross-entropy over logits.
///
/// `logits` is `[batch, classes]`, `labels[i] ∈ [0, classes)`. Returns the
/// mean negative log-likelihood and its gradient `(softmax − onehot)/batch`.
/// Numerically stable via the max-shift trick.
///
/// # Panics
/// Panics if a label is out of range or the batch sizes disagree.
pub fn cross_entropy_logits(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.ndim(), 2, "cross_entropy expects [batch, classes]");
    let (batch, classes) = (logits.rows(), logits.cols());
    assert_eq!(batch, labels.len(), "batch/labels length mismatch");
    let mut grad = logits.softmax_rows();
    let mut loss = 0.0f64;
    let inv_b = 1.0 / batch as f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(
            label < classes,
            "label {label} out of range (classes={classes})"
        );
        let p = grad.at(i, label).max(1e-12);
        loss -= (p as f64).ln();
        let row = grad.row_mut(i);
        row[label] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_b;
        }
    }
    ((loss / batch as f64) as f32, grad)
}

/// Inference-only mean cross-entropy (no gradient allocation).
pub fn cross_entropy_loss_only(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.ndim(), 2);
    let batch = logits.rows();
    assert_eq!(batch, labels.len(), "batch/labels length mismatch");
    let probs = logits.softmax_rows();
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        let p = probs.at(i, label).max(1e-12);
        loss -= (p as f64).ln();
    }
    (loss / batch as f64) as f32
}

/// Mean-squared error. Returns the mean of `(pred − target)²` and the
/// gradient `2(pred − target)/numel`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(
        pred.shape(),
        target.shape(),
        "mse shape mismatch: {:?} vs {:?}",
        pred.shape(),
        target.shape()
    );
    let n = pred.numel() as f32;
    let mut grad = pred.clone();
    grad.sub_assign(target);
    let loss = grad.norm_sq() / n;
    grad.scale(2.0 / n);
    (loss, grad)
}

/// Top-1 accuracy of logits against labels, in `[0, 1]`.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    assert_eq!(logits.rows(), labels.len(), "batch/labels length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn cross_entropy_uniform_logits_is_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let labels = vec![0, 3, 7, 9];
        let (loss, _) = cross_entropy_logits(&logits, &labels);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_confident_correct_is_near_zero() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.data_mut()[1] = 50.0;
        let (loss, _) = cross_entropy_logits(&logits, &[1]);
        assert!(loss < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let mut rng = Rng64::new(1);
        let logits = Tensor::randn(&[3, 4], 0.0, 1.0, &mut rng);
        let labels = vec![1, 0, 3];
        let (_, grad) = cross_entropy_logits(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fp = cross_entropy_loss_only(&lp, &labels);
            let fm = cross_entropy_loss_only(&lm, &labels);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "grad mismatch at {i}: {numeric} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let mut rng = Rng64::new(2);
        let logits = Tensor::randn(&[5, 7], 0.0, 2.0, &mut rng);
        let labels = vec![0, 1, 2, 3, 4];
        let (_, grad) = cross_entropy_logits(&logits, &labels);
        for r in 0..5 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = cross_entropy_logits(&logits, &[3]);
    }

    #[test]
    fn loss_only_matches_fused() {
        let mut rng = Rng64::new(3);
        let logits = Tensor::randn(&[6, 5], 0.0, 1.0, &mut rng);
        let labels = vec![0, 1, 2, 3, 4, 0];
        let (fused, _) = cross_entropy_logits(&logits, &labels);
        let only = cross_entropy_loss_only(&logits, &labels);
        assert!((fused - only).abs() < 1e-6);
    }

    #[test]
    fn mse_known_value_and_grad() {
        let pred = Tensor::from_slice(&[1.0, 2.0]);
        let target = Tensor::from_slice(&[0.0, 0.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6); // (1+4)/2
        assert_eq!(grad.data(), &[1.0, 2.0]); // 2*(p-t)/2
    }

    #[test]
    fn mse_zero_when_equal() {
        let t = Tensor::from_slice(&[3.0, -1.0, 2.0]);
        let (loss, grad) = mse(&t, &t);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(&[3, 2], vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }
}
