//! Minimal data-parallel helpers built on crossbeam scoped threads.
//!
//! We deliberately avoid a global thread-pool: federated-learning runs spawn
//! short, coarse-grained bursts of work (one task per client, or one row
//! block per matmul), and scoped threads keep the borrow story simple while
//! guaranteeing data-race freedom. Thread count is capped by
//! `std::thread::available_parallelism` and can be overridden for tests via
//! [`set_max_threads`].

use std::sync::atomic::{AtomicUsize, Ordering};

static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Override the maximum number of worker threads (0 = auto-detect).
///
/// Intended for tests and benchmarks that need single-threaded execution;
/// production code should leave this at the default.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// Number of worker threads that parallel helpers will use.
pub fn max_threads() -> usize {
    let forced = MAX_THREADS.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to disjoint mutable chunks of `data` in parallel.
///
/// `f(chunk_start, chunk)` receives the absolute element offset of the chunk
/// so callers can recover global indices. Falls back to a sequential call
/// when the work is too small to amortize thread spawning.
pub fn par_chunks_mut<T, F>(data: &mut [T], min_chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let threads = max_threads().min(len / min_chunk.max(1)).max(1);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let chunk = len.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (i, piece) in data.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| f(i * chunk, piece));
        }
    })
    .expect("parallel worker panicked");
}

/// Run one closure per item of `items` in parallel and collect the results
/// in input order.
///
/// Used for "one task per federated client" parallelism where each task is
/// heavy (a full local-training pass), so the per-thread overhead is noise.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = max_threads().min(n);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (block, out_block) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            let start = block * chunk;
            scope.spawn(move |_| {
                for (j, slot) in out_block.iter_mut().enumerate() {
                    let i = start + j;
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    })
    .expect("parallel worker panicked");
    out.into_iter()
        .map(|r| r.expect("worker left a result slot empty"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u32; 10_000];
        par_chunks_mut(&mut data, 16, |start, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v += (start + j) as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn par_chunks_mut_small_input_sequential() {
        let mut data = vec![1.0f32; 3];
        par_chunks_mut(&mut data, 1024, |_, chunk| {
            for v in chunk {
                *v *= 2.0;
            }
        });
        assert_eq!(data, vec![2.0; 3]);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        let squares = par_map(&items, |_, &x| x * x);
        for (i, &s) in squares.iter().enumerate() {
            assert_eq!(s, i * i);
        }
    }

    #[test]
    fn par_map_empty() {
        let items: Vec<u8> = vec![];
        let out: Vec<u8> = par_map(&items, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn max_threads_override() {
        set_max_threads(2);
        assert_eq!(max_threads(), 2);
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }
}
