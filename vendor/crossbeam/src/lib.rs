//! # crossbeam (offline shim)
//!
//! Provides the scoped-thread API surface this workspace uses —
//! `crossbeam::scope(|s| { s.spawn(|_| ...); })` — backed by
//! [`std::thread::scope`] (stable since Rust 1.63), because the build
//! environment cannot fetch the real crate (see `vendor/README.md`).
//!
//! Divergence from real crossbeam: a panicking worker propagates its panic
//! when the scope joins (std behavior) instead of surfacing it in the
//! returned `Result`'s `Err` — so [`scope`] always returns `Ok` and callers'
//! `.expect(...)` never observes an `Err`. The workspace only uses the
//! `Result` for exactly such `.expect` calls, so behavior under panic is
//! equivalent (the process still panics with the worker's payload).

use std::marker::PhantomData;
use std::thread as std_thread;

/// Handle passed to the closure of [`scope`]; mirrors
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std_thread::Scope<'scope, 'env>,
    _env: PhantomData<&'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure receives a scope handle argument
    /// for signature compatibility with crossbeam (`|_| ...` at every call
    /// site in this workspace); nested spawning through it is not supported
    /// and the argument is the unit placeholder [`NestedScope`].
    pub fn spawn<F, T>(&self, f: F) -> std_thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(NestedScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(NestedScope { _priv: () }))
    }
}

/// Placeholder for the scope argument crossbeam passes to spawned closures.
#[derive(Debug, Clone, Copy)]
pub struct NestedScope {
    _priv: (),
}

/// Create a scope for spawning threads that may borrow from the caller's
/// stack. Mirrors `crossbeam::scope`; see the module docs for the (benign)
/// panic-propagation divergence.
pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std_thread::scope(|s| {
        let wrapper = Scope {
            inner: s,
            _env: PhantomData,
        };
        f(&wrapper)
    }))
}

/// Scoped-thread module path compatibility (`crossbeam::thread::scope`).
pub mod thread {
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_workers_share_borrows() {
        let mut data = vec![0u32; 64];
        let chunk = 16;
        super::scope(|s| {
            for (i, piece) in data.chunks_mut(chunk).enumerate() {
                s.spawn(move |_| {
                    for (j, slot) in piece.iter_mut().enumerate() {
                        *slot = (i * chunk + j) as u32;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }
}
