//! # proptest (offline shim)
//!
//! A deterministic, dependency-free re-implementation of the slice of
//! proptest this workspace's property tests use, vendored because the build
//! environment has no registry access (see `vendor/README.md`):
//!
//! * the [`strategy::Strategy`] trait with `prop_map` and `boxed`;
//! * range strategies (`-10.0f32..10.0`, `1usize..=3`, ...), tuples of
//!   strategies, [`strategy::Just`] and [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! its generated inputs unreduced) and no persisted failure seeds — each test
//! derives a fixed RNG seed from its module path and name, so runs are fully
//! deterministic.

/// Strategies for generating values.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f` (mirrors
        /// `proptest::strategy::Strategy::prop_map`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy so heterogeneous strategies producing the
        /// same value type can be stored together (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy (output of [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the given value (mirrors
    /// `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (backs [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.usize_below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// Types that can be drawn uniformly from a half-open or inclusive range.
    pub trait SampleUniform: Copy {
        /// Draw from `[lo, hi)`.
        fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
        /// Draw from `[lo, hi]`.
        fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_sample_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty integer range");
                    let span = (hi as i128 - lo as i128) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
                fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo <= hi, "empty integer range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty float range");
                    let v = lo + (rng.unit_f64() as $t) * (hi - lo);
                    // Rounding in the narrower type can land exactly on `hi`;
                    // keep the half-open contract.
                    if v < hi { v } else { lo }
                }
                fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo <= hi, "empty float range");
                    if lo == hi {
                        return lo;
                    }
                    // Draw the unit from [0, 1] (both ends reachable) so the
                    // documented closed-range contract holds, then clamp
                    // against rounding overshoot.
                    let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    let v = lo + (unit as $t) * (hi - lo);
                    v.clamp(lo, hi)
                }
            }
        )*};
    }
    impl_sample_float!(f32, f64);

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::{SampleUniform, Strategy};
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: an exact `usize` or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element` and whose
    /// length falls in `size` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = usize::sample_inclusive(rng, self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test execution: configuration and the deterministic RNG.
pub mod test_runner {
    /// Subset of `proptest::test_runner::Config` the workspace uses.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary name (FNV-1a hash), so every test gets a
        /// distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        pub fn usize_below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests (shim of proptest's `proptest!` macro). Supports an
/// optional leading `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items carrying their own
/// attributes (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _ in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type (shim of
/// proptest's `prop_oneof!`; all arms are equally weighted).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property (no shrinking: forwards to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (forwards to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.5f32..7.5, n in 1usize..=4) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_range(xs in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u32), Just(2u32), (3u32..5).prop_map(|v| v)];
        let mut rng = crate::test_runner::TestRng::from_name("oneof");
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && (seen[3] || seen[4]));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
