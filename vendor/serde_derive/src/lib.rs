//! # serde_derive (offline shim)
//!
//! Hand-written `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the vendored `serde` shim. The build environment has no registry access,
//! so `syn`/`quote` are unavailable; the derive input is parsed directly from
//! the [`proc_macro::TokenStream`] and the impl is emitted as source text.
//!
//! Supported shapes (everything this workspace derives):
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   serde's default representation);
//! * the `#[serde(default)]` field attribute;
//! * the `#[serde(skip_serializing_if = "path")]` field attribute (named
//!   fields only). Like real serde, a skipped field should also carry
//!   `default` so the omitted key deserializes back.
//!
//! Generics and other `#[serde(...)]` attributes are intentionally not
//! supported and produce a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(&item, true)
}

/// Derive `serde::Deserialize` (shim) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(&item, false)
}

struct Field {
    name: String,
    default: bool,
    /// Predicate path from `#[serde(skip_serializing_if = "path")]`.
    skip_ser_if: Option<String>,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Recognized `#[serde(...)]` field attributes.
#[derive(Default)]
struct FieldAttrs {
    default: bool,
    skip_ser_if: Option<String>,
}

/// Consume attributes (`#[...]` groups) from the front of `tokens`,
/// collecting the supported `#[serde(...)]` field options.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let text = g.stream().to_string();
                let compact: String = text.chars().filter(|c| !c.is_whitespace()).collect();
                if let Some(body) = compact
                    .strip_prefix("serde(")
                    .and_then(|s| s.strip_suffix(')'))
                {
                    // Paths and predicates contain no commas, so a flat
                    // split covers every supported combination.
                    for part in body.split(',') {
                        if part == "default" {
                            attrs.default = true;
                        } else if let Some(pred) = part
                            .strip_prefix("skip_serializing_if=\"")
                            .and_then(|s| s.strip_suffix('"'))
                        {
                            attrs.skip_ser_if = Some(pred.to_string());
                        } else {
                            panic!(
                                "serde_derive shim: unsupported serde attribute #[{text}] \
                                 (only #[serde(default)] and \
                                 #[serde(skip_serializing_if = \"path\")] are implemented; \
                                 see vendor/serde_derive)"
                            );
                        }
                    }
                }
            }
            other => panic!("serde_derive shim: malformed attribute, found {other:?}"),
        }
    }
    attrs
}

/// Consume an optional visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_vis(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::Struct(Shape::Named(parse_named_fields(g.stream()))),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                kind: Kind::Struct(Shape::Tuple(count_tuple_fields(g.stream()))),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                kind: Kind::Struct(Shape::Unit),
            },
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde_derive shim: unexpected enum body {other:?}"),
        },
        kw => panic!("serde_derive shim: cannot derive for `{kw}` items"),
    }
}

/// Parse `name: Type, ...` field lists, recording `#[serde(default)]`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        if tokens.peek().is_none() {
            break;
        }
        let attrs = skip_attrs(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde_derive shim: expected `:` after field `{name}`, found {other:?}")
            }
        }
        skip_type(&mut tokens);
        fields.push(Field {
            name,
            default: attrs.default,
            skip_ser_if: attrs.skip_ser_if,
        });
    }
    fields
}

/// Skip one type, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0usize;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                tokens.next();
                return;
            }
            _ => {}
        }
        tokens.next();
    }
}

/// Count the fields of a tuple struct/variant: top-level commas + 1.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0usize;
    loop {
        if tokens.peek().is_none() {
            break;
        }
        skip_attrs(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_vis(&mut tokens);
        skip_type(&mut tokens);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        if tokens.peek().is_none() {
            break;
        }
        skip_attrs(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive shim: expected variant name, found {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while let Some(tt) = tokens.peek() {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                tokens.next();
                break;
            }
            tokens.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn emit(item: &Item, serialize: bool) -> TokenStream {
    let code = if serialize {
        emit_serialize(item)
    } else {
        emit_deserialize(item)
    };
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive shim: generated invalid code: {e:?}\n{code}"))
}

fn emit_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => named_fields_map(fields, "&self."),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        // Newtype variants use the value directly (real
                        // serde's externally-tagged representation).
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\
                             \"{vn}\".to_string(), ::serde::Serialize::serialize(f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let sers: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Seq(vec![{sers}]))]),",
                                binds = binds.join(", "),
                                sers = sers.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\
                                 \"{vn}\".to_string(), {inner})]),",
                                binds = binds.join(", "),
                                inner = named_fields_map(fields, "")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Emit the `::serde::Value::Map` expression for a named-field list.
/// `access` prefixes each field name (`"&self."` in struct impls, `""` for
/// enum-variant pattern bindings, which are already references).
fn named_fields_map(fields: &[Field], access: &str) -> String {
    if fields.iter().all(|f| f.skip_ser_if.is_none()) {
        let entries: Vec<String> = fields
            .iter()
            .map(|f| {
                format!(
                    "(\"{n}\".to_string(), ::serde::Serialize::serialize({access}{n}))",
                    n = f.name
                )
            })
            .collect();
        return format!("::serde::Value::Map(vec![{}])", entries.join(", "));
    }
    // At least one conditional field: build the map imperatively so skipped
    // entries never materialize (keeps byte-stable output for defaults).
    let mut stmts = String::from("let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields {
        let n = &f.name;
        let push = format!(
            "entries.push((\"{n}\".to_string(), ::serde::Serialize::serialize({access}{n})));"
        );
        match &f.skip_ser_if {
            // UFCS call: `pred` takes the field by reference, and both
            // `&self.field` and pattern bindings coerce to `&T`.
            Some(pred) => stmts.push_str(&format!("if !{pred}({access}{n}) {{ {push} }}\n")),
            None => {
                stmts.push_str(&push);
                stmts.push('\n');
            }
        }
    }
    format!("::serde::Value::Map({{ {stmts} entries }})")
}

fn named_fields_ctor(type_path: &str, fields: &[Field], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let n = &f.name;
            if f.default {
                format!(
                    "{n}: match {map_expr}.get(\"{n}\") {{ \
                     Some(v) => ::serde::Deserialize::deserialize(v)?, \
                     None => ::core::default::Default::default() }},"
                )
            } else {
                format!(
                    "{n}: ::serde::Deserialize::deserialize({map_expr}.get(\"{n}\")\
                     .ok_or_else(|| ::serde::Error::custom(\
                     \"missing field `{n}` in {type_path}\"))?)?,"
                )
            }
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join("\n"))
}

fn emit_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => format!("Ok({name})"),
        Kind::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = value.as_seq().ok_or_else(|| ::serde::Error::custom(\
                 \"expected sequence for {name}\"))?;\n\
                 if seq.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\")); }}\n\
                 Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Kind::Struct(Shape::Named(fields)) => {
            format!(
                "if value.as_map().is_none() {{ return Err(::serde::Error::custom(\
                 \"expected map for {name}\")); }}\n\
                 Ok({})",
                named_fields_ctor(name, fields, "value")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(inner)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&seq[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 let seq = inner.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected sequence for {name}::{vn}\"))?;\n\
                                 if seq.len() != {n} {{ return Err(::serde::Error::custom(\
                                 \"wrong arity for {name}::{vn}\")); }}\n\
                                 Ok({name}::{vn}({elems}))\n}}",
                                elems = elems.join(", ")
                            ))
                        }
                        Shape::Named(fields) => Some(format!(
                            "\"{vn}\" => {{\n\
                             if inner.as_map().is_none() {{ return Err(::serde::Error::custom(\
                             \"expected map for {name}::{vn}\")); }}\n\
                             Ok({})\n}}",
                            named_fields_ctor(&format!("{name}::{vn}"), fields, "inner")
                        )),
                    }
                })
                .collect();
            format!(
                "if let Some(tag) = value.as_str() {{\n\
                 match tag {{ {unit_arms}\n\
                 other => return Err(::serde::Error::custom(format!(\
                 \"unknown unit variant `{{other}}` for {name}\"))), }}\n\
                 }}\n\
                 let entries = value.as_map().ok_or_else(|| ::serde::Error::custom(\
                 \"expected variant tag for {name}\"))?;\n\
                 if entries.len() != 1 {{ return Err(::serde::Error::custom(\
                 \"expected single-key variant map for {name}\")); }}\n\
                 let (tag, inner) = (&entries[0].0, &entries[0].1);\n\
                 match tag.as_str() {{ {tagged_arms}\n\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` for {name}\"))), }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         #[allow(unused_variables, clippy::len_zero)]\n\
         fn deserialize(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
