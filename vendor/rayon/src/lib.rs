//! # rayon (offline shim)
//!
//! A tiny stand-in for rayon's fork-join primitives, vendored because the
//! build environment has no registry access (see `vendor/README.md`). The
//! seed workspace does its data-parallelism through `feddrl_nn::parallel`
//! (crossbeam-scoped threads), so nothing currently depends on this crate —
//! it exists so `[workspace.dependencies] rayon` resolves and future
//! parallelism PRs have a place to grow the API (`par_iter` et al.) without
//! re-plumbing manifests.

use std::thread;

/// Run two closures, potentially in parallel, returning both results.
/// Mirrors `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: join worker panicked"))
    })
}

/// Number of threads the shim will use for future parallel APIs; mirrors
/// `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Prelude for drop-in `use rayon::prelude::*;` compatibility (currently
/// empty: the workspace has no `par_iter` call sites yet).
pub mod prelude {}

#[cfg(test)]
mod tests {
    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
