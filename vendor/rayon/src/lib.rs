//! # rayon (offline shim)
//!
//! A tiny stand-in for rayon's fork-join primitives, vendored because the
//! build environment has no registry access (see `vendor/README.md`).
//! Besides `join`, it now carries the small slice of the parallel-iterator
//! API the workspace actually uses — `par_iter().map(..).collect()` over
//! slices/`Vec`s, order-preserving like the real crate — which powers the
//! executors' parallel client dispatch in `feddrl_fl`. Swapping back to
//! the published rayon only needs manifest edits: the call sites compile
//! against the real API unchanged.

use std::thread;

/// Run two closures, potentially in parallel, returning both results.
/// Mirrors `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: join worker panicked"))
    })
}

/// Number of threads the shim uses for parallel APIs; mirrors
/// `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel-iterator subset: `par_iter().map(..).collect()` on slices.
pub mod iter {
    use std::thread;

    /// Borrowing conversion into a parallel iterator; mirrors
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by reference.
        type Item: 'data + Sync;
        /// Parallel iterator over `&Self::Item`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// A parallel iterator over a slice.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Map each element through `f`, preserving input order.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// The result of [`ParIter::map`], awaiting collection.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, F, R> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        /// Evaluate the map in parallel and collect the results **in input
        /// order** — the same guarantee real rayon's indexed collect makes,
        /// which is what lets deterministic callers treat parallel and
        /// sequential evaluation as interchangeable.
        ///
        /// Items are split into one contiguous chunk per available thread
        /// and evaluated on scoped std threads.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let n = self.items.len();
            let threads = crate::current_num_threads().min(n.max(1));
            if threads <= 1 || n <= 1 {
                return self.items.iter().map(&self.f).collect();
            }
            let chunk = n.div_ceil(threads);
            let f = &self.f;
            let per_chunk: Vec<Vec<R>> = thread::scope(|s| {
                let handles: Vec<_> = self
                    .items
                    .chunks(chunk)
                    .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rayon shim: map worker panicked"))
                    .collect()
            });
            per_chunk.into_iter().flatten().collect()
        }
    }
}

/// Prelude for drop-in `use rayon::prelude::*;` compatibility.
pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<usize> = Vec::new();
        let out: Vec<usize> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7usize];
        let out: Vec<usize> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..257).map(|i| i * 31).collect();
        let par: Vec<u64> = items.par_iter().map(|&x| x.wrapping_mul(x)).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x)).collect();
        assert_eq!(par, seq);
    }
}
