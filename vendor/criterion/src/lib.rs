//! # criterion (offline shim)
//!
//! A minimal benchmark harness exposing the criterion API surface this
//! workspace's `crates/bench/benches/*.rs` use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `bench_with_input`, throughput,
//! `Bencher::iter`), vendored because the build environment has no registry
//! access (see `vendor/README.md`).
//!
//! Instead of criterion's statistical sampling it runs a short warm-up, then
//! a fixed measurement window, and reports the median per-iteration time to
//! stdout as `bench <group>/<id> ... <median> ns/iter (<iters> iters)`.
//! That is deliberate: the point of the shim is that `cargo bench` compiles
//! and produces comparable numbers offline, not publication-grade CIs.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (callers may also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement window per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.measurement, None, &id.0, f);
        self
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration workload size for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes its own iteration
    /// count from the measurement window.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            self.criterion.measurement,
            self.throughput.clone(),
            &label,
            &mut f,
        );
        self
    }

    /// Benchmark `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(
            self.criterion.measurement,
            self.throughput.clone(),
            &label,
            |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Finish the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the benchmarked parameter, mirroring
    /// `criterion::BenchmarkId::from_parameter`.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Build a `name/parameter` id.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{param}", name.into()))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Workload size descriptor for derived throughput rates.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; `iter` measures the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the harness-chosen number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(measurement: Duration, throughput: Option<Throughput>, label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: one iteration to estimate cost.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = (measurement.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    // Measure a few batches and keep the median per-iteration time.
    let batches = 5usize;
    let batch_iters = target.div_ceil(batches as u64).max(1);
    let mut samples: Vec<f64> = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut b = Bencher {
            iters: batch_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(", {:.1} Melem/s", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(", {:.1} MiB/s", n as f64 / median * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("bench {label}: {median:.0} ns/iter ({batches}x{batch_iters} iters{rate})");
}

/// Declare a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 2 + 2));
    }
}
