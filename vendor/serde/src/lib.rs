//! # serde (offline shim)
//!
//! A minimal, API-compatible stand-in for the real `serde` crate, vendored
//! because the build environment has **no access to any crates.io mirror**
//! (see `vendor/README.md`). It provides exactly what this workspace uses:
//!
//! * the [`Serialize`] / [`Deserialize`] traits, re-implemented over a small
//!   self-describing [`Value`] data model instead of serde's
//!   serializer/deserializer visitors;
//! * derive macros `#[derive(Serialize, Deserialize)]` (from the sibling
//!   `serde_derive` shim) supporting structs, tuple structs and enums with
//!   unit/tuple/struct variants, plus the `#[serde(default)]` field
//!   attribute;
//! * impls for the std types the workspace serializes: integers, floats,
//!   `bool`, `String`, `Option<T>`, `Vec<T>`, fixed-size arrays, tuples and
//!   maps.
//!
//! The sibling `serde_json` shim lowers [`Value`] to/from JSON text. Swapping
//! these shims back for the real crates requires no source changes in the
//! workspace: the derive spelling and the `serde_json::{to_string, from_str}`
//! entry points are identical.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Self-describing intermediate representation produced by [`Serialize`] and
/// consumed by [`Deserialize`].
///
/// Integers keep their own variants (rather than lowering to `f64`) so that
/// full-range `u64` values — e.g. the xoshiro256++ RNG state — round-trip
/// exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`. Also used for non-finite floats, mirroring serde_json.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (preferred for anything that fits).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map entry list, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a map key (linear scan: maps here are small field lists).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced by deserialization (and re-exported by `serde_json`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message, mirroring `serde::de::Error::custom`.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize `self` into the [`Value`] data model.
pub trait Serialize {
    /// Convert to the intermediate representation.
    fn serialize(&self) -> Value;
}

/// Reconstruct `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert from the intermediate representation.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = match *value {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    // Strict `<`: `u64::MAX as f64` rounds up to 2^64, which
                    // would otherwise admit out-of-range floats and saturate.
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f < u64::MAX as f64 => {
                        f as u64
                    }
                    _ => return Err(Error::custom(format!(
                        "expected unsigned integer, got {value:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = match *value {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n).map_err(|_| {
                        Error::custom(format!("integer {n} out of range for i64"))
                    })?,
                    // Strict upper `<`: `i64::MAX as f64` rounds up to 2^63.
                    Value::F64(f) if f.fract() == 0.0
                        && f >= i64::MIN as f64
                        && f < i64::MAX as f64 => f as i64,
                    _ => return Err(Error::custom(format!(
                        "expected signed integer, got {value:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::F64(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match *value {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom(format!(
                        "expected float, got {value:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!("expected bool, got {value:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom(format!("expected string, got {value:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {value:?}")))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let seq = value
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {value:?}")))?;
        if seq.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                seq.len()
            )));
        }
        let items: Vec<T> = seq.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let seq = value.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected tuple sequence, got {value:?}"))
                })?;
                let expected = [$($idx,)+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, got {}", seq.len())));
                }
                Ok(($($name::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {value:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys for deterministic output.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, got {value:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrips_exactly() {
        let big = u64::MAX - 7;
        let v = big.serialize();
        assert_eq!(u64::deserialize(&v).unwrap(), big);
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<f32> = None;
        assert_eq!(none.serialize(), Value::Null);
        assert_eq!(Option::<f32>::deserialize(&Value::Null).unwrap(), None);
    }

    #[test]
    fn array_roundtrip() {
        let a = [1u64, 2, 3, 4];
        let v = a.serialize();
        assert_eq!(<[u64; 4]>::deserialize(&v).unwrap(), a);
        assert!(<[u64; 3]>::deserialize(&v).is_err());
    }
}
