//! # parking_lot (offline shim)
//!
//! std-backed [`Mutex`] / [`RwLock`] with parking_lot's API shape: `lock()`
//! returns the guard directly (no `Result`). Lock poisoning — which
//! parking_lot does not have — is handled by taking the poisoned guard
//! anyway, matching parking_lot's semantics of simply continuing after a
//! panicking holder. Vendored because the build environment has no registry
//! access (see `vendor/README.md`).

use std::sync::{self, PoisonError};

/// Mutual exclusion primitive, mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike std, never panics
    /// on poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock, mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
