//! # serde_json (offline shim)
//!
//! JSON serialization for the vendored `serde` shim (see `vendor/README.md`
//! for why these exist). Provides the three entry points the workspace uses —
//! [`to_string`], [`to_string_pretty`] and [`from_str`] — with the same
//! signatures as the real crate.
//!
//! Numbers are written losslessly: integers keep their own `u64`/`i64`
//! representation (full-range RNG state round-trips exactly) and floats use
//! Rust's shortest round-trip formatting. Non-finite floats serialize as
//! `null`, mirroring real serde_json.

use serde::{Deserialize, Serialize, Value};

/// Error type (shared with the `serde` shim).
pub use serde::Error;

/// Re-export of the shim's self-describing value (the real crate has its own
/// `serde_json::Value`; this workspace only uses it transitively).
pub use serde::Value as JsonValue;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize `value` to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display prints the shortest string that round-trips; integral
    // values print without a fractional part ("1"), which the parser reads
    // back as an integer — the shim's float deserializers accept both.
    let s = f.to_string();
    out.push_str(&s);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` in array, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` in object, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4()?;
                            // Surrogate pairs (variant names here are ASCII,
                            // but stay correct for completeness).
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => return Err(Error::custom(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_range_u64_roundtrip() {
        let xs: Vec<u64> = vec![0, 1, u64::MAX, u64::MAX - 1, 1 << 63];
        let json = to_string(&xs).unwrap();
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn f32_shortest_roundtrip() {
        let xs: Vec<f32> = vec![0.1, -3.25, 1.0, f32::MIN_POSITIVE, 12345.678];
        let json = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn nested_and_pretty() {
        let v: Vec<Option<Vec<f64>>> = vec![Some(vec![1.5, -2.0]), None];
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(compact, "[[1.5,-2],null]");
        let back: Vec<Option<Vec<f64>>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\t\"quoted\" \\ ünïcode".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
    }

    #[test]
    fn rejects_invalid_low_surrogate() {
        assert!(from_str::<String>(r#""\uD800A""#).is_err());
        let pair: String = from_str(r#""😀""#).unwrap();
        assert_eq!(pair, "\u{1F600}");
    }

    mod derive_shapes {
        use crate::{from_str, to_string};
        use serde::{Deserialize, Serialize};

        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        enum Shape {
            Unit,
            Newtype(f32),
            Tuple(u32, bool),
            Struct { x: f64, label: String },
        }

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Wrapper(Vec<Shape>);

        #[test]
        fn every_variant_shape_roundtrips() {
            let all = Wrapper(vec![
                Shape::Unit,
                Shape::Newtype(1.5),
                Shape::Tuple(7, true),
                Shape::Struct {
                    x: -2.25,
                    label: "hi".into(),
                },
            ]);
            let json = to_string(&all).unwrap();
            let back: Wrapper = from_str(&json).unwrap();
            assert_eq!(back, all);
        }

        #[test]
        fn newtype_variant_uses_serde_external_tagging() {
            // Real serde writes {"Newtype":1.5}, not {"Newtype":[1.5]} —
            // the shim must match so persisted artifacts survive a swap
            // back to the published crates.
            assert_eq!(
                to_string(&Shape::Newtype(1.5)).unwrap(),
                r#"{"Newtype":1.5}"#
            );
            assert_eq!(to_string(&Shape::Unit).unwrap(), r#""Unit""#);
        }
    }
}
