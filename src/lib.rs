//! # feddrl-repro — root facade of the FedDRL (ICPP'22) reproduction
//!
//! Re-exports every crate of the workspace so examples and integration
//! tests can `use feddrl_repro::prelude::*`. See the individual crates for
//! the real documentation:
//!
//! * [`feddrl`] — the FedDRL aggregation strategy and two-stage training;
//! * [`feddrl_fl`] — the synchronous federated-learning simulator;
//! * [`feddrl_drl`] — the DDPG agent with TD-prioritized replay;
//! * [`feddrl_data`] — synthetic federated datasets and non-IID
//!   partitioners (including the paper's novel cluster-skew CE/CN);
//! * [`feddrl_nn`] — the pure-Rust deep-learning substrate;
//! * [`feddrl_sim`] — communication/timing overhead models.

#![warn(missing_docs)]

pub use feddrl;
pub use feddrl_data;
pub use feddrl_drl;
pub use feddrl_fl;
pub use feddrl_nn;
pub use feddrl_sim;

/// Everything, via the `feddrl` crate's prelude plus the sim helpers.
pub mod prelude {
    pub use feddrl::prelude::*;
    pub use feddrl_sim::prelude::*;
}
