//! # feddrl-repro — root facade of the FedDRL (ICPP'22) reproduction
//!
//! Re-exports every crate of the workspace so examples and integration
//! tests can `use feddrl_repro::prelude::*`. See the individual crates for
//! the real documentation:
//!
//! * [`feddrl`] — the FedDRL aggregation strategy and two-stage training;
//! * [`feddrl_fl`] — the synchronous federated-learning simulator;
//! * [`feddrl_drl`] — the DDPG agent with TD-prioritized replay;
//! * [`feddrl_data`] — synthetic federated datasets and non-IID
//!   partitioners (including the paper's novel cluster-skew CE/CN);
//! * [`feddrl_nn`] — the pure-Rust deep-learning substrate;
//! * [`feddrl_sim`] — communication/timing overhead models plus the
//!   discrete-event heterogeneity engine (device fleets, virtual clock,
//!   event queue) behind `feddrl_fl`'s deadline-bounded round executor;
//! * [`feddrl_net`] — the networked runtime: length-prefixed wire
//!   protocol with a negotiated version handshake, wire-level sub-model
//!   dispatch and delta-compressed publishes, TCP server/worker
//!   processes, heartbeat liveness registry, and the `NetworkExecutor`
//!   that plugs real transport into the unchanged session loop.

#![warn(missing_docs)]

pub use feddrl;
pub use feddrl_data;
pub use feddrl_drl;
pub use feddrl_fl;
pub use feddrl_net;
pub use feddrl_nn;
pub use feddrl_sim;

/// Everything, via the `feddrl` crate's prelude plus the sim helpers.
///
/// # Re-export policy
///
/// Each workspace crate owns a `prelude` that re-exports **only the types a
/// downstream caller needs to drive that crate** (entry points, config
/// structs, the handful of result types they pattern-match on) — never whole
/// modules and never internals. Preludes compose transitively along the
/// dependency chain (`feddrl::prelude` already pulls in the `fl`, `drl`,
/// `data` and `nn` preludes), so this facade only has to merge the top of
/// the chain: [`feddrl::prelude`] plus [`feddrl_sim::prelude`] — `sim`
/// sits beneath `fl` (the deadline executor builds on its device/event
/// engine) but its prelude is not re-exported along the chain, so the
/// facade merges it explicitly.
///
/// Rules for growing it:
///
/// * a name goes into a crate's prelude the first time an example, test or
///   bench outside that crate needs it — not before;
/// * name collisions across crates are **not** tolerated here: if two crates
///   export the same identifier, the facade must re-export one of them
///   explicitly and the loser stays path-qualified (today there is exactly
///   one glob-shadowing hazard, `Strategy`, which integration tests
///   disambiguate with `use proptest::strategy::Strategy as _`);
/// * removing anything from a prelude is a breaking change to every example
///   and experiment binary, so prefer adding `#[doc(hidden)]` deprecation
///   shims over deletion.
pub mod prelude {
    pub use feddrl::prelude::*;
    pub use feddrl_net::prelude::*;
    pub use feddrl_sim::prelude::*;
}
